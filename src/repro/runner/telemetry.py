"""Process-wide metrics for the sweep pipeline (pure observability).

The runner stack is built around one invariant: execution topology never
changes results.  Telemetry extends that invariant — a
:class:`MetricsRegistry` records *how* a sweep executed (dispatches,
redeliveries, cache hits, chaos injections, round timings) without ever
touching *what* it computed.  Nothing in this module enters a run identity,
a cache key, a stored payload or a golden file; a run with a busy registry
is byte-identical to one with a fresh registry, and the conformance tests
pin it.

Three kinds of instruments, all thread-safe behind one lock:

* **counters** — monotonic, labelled totals (``inc``); the workhorse:
  ``backend_dispatch_total{worker=...}``, ``store_hits_total{store=...}``,
  ``chaos_injected_total{directive=...}``, ...
* **gauges** — last-written values (``set_gauge``), e.g. connected workers;
* **histograms** — durations bucketed against a fixed, bounded boundary set
  (``observe`` / ``timed``), e.g. ``runner_round_seconds``.

Plus a bounded **event log** (a deque, oldest entries dropped) of structured
records for the handful of rare, high-signal moments — a worker retired as
hung, a store entry quarantined — where a counter alone loses the story.

Surfaced three ways: ``GET /metrics`` on ``repro serve`` (JSON, or
Prometheus text exposition with ``?format=prometheus``), ``--metrics-out
PATH`` on ``repro run`` / ``repro bler`` (end-of-run JSON snapshot), and
``repro metrics SNAPSHOT`` (human summary of a snapshot file).

The registry is per-process, like the chaos plan: a worker daemon keeps its
own counts, and a coordinator snapshot records the coordinator's view (its
dispatches, its redeliveries, its store traffic) — not the fleet's.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

#: Snapshot layout version (bump when the JSON shape changes).
METRICS_FORMAT_VERSION = 1

#: Duration-histogram bucket upper bounds, in seconds.  Fixed and bounded:
#: a histogram's memory never depends on what it observed.  The range spans
#: a sub-millisecond serial round to a multi-minute paper-scale round.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0,
)

#: Structured event log capacity (oldest entries are dropped beyond this).
EVENT_LOG_LIMIT = 512

#: A canonicalised label set: sorted ``(key, value)`` string pairs.
LabelsT = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelsT:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelsT) -> Dict[str, str]:
    return {k: v for k, v in key}


class _Histogram:
    """One bounded-bucket duration histogram (not thread-safe on its own)."""

    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        # One slot per bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Thread-safe counters, gauges, duration histograms and an event log.

    All instruments are created lazily on first use; label values are
    stringified (Prometheus semantics).  ``snapshot()`` is the one read
    path — it returns plain JSON-able data, so writers never block on
    serialisation.
    """

    def __init__(self, *, event_limit: int = EVENT_LOG_LIMIT) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelsT], float] = {}
        self._gauges: Dict[Tuple[str, LabelsT], float] = {}
        self._histograms: Dict[Tuple[str, LabelsT], _Histogram] = {}
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=event_limit)
        self._started_at = time.time()

    # ------------------------------------------------------------------ #
    # write paths
    # ------------------------------------------------------------------ #
    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Add *amount* to a monotonic counter (negative amounts are errors)."""
        if amount < 0:
            raise ValueError(f"counter {name} cannot decrease (amount={amount})")
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Record the current value of a gauge (last write wins)."""
        with self._lock:
            self._gauges[(name, _label_key(labels))] = float(value)

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        """Record one duration sample into a bounded-bucket histogram."""
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram()
            histogram.observe(float(seconds))

    @contextmanager
    def timed(self, name: str, **labels: Any) -> Iterator[None]:
        """Time a ``with`` block into the *name* histogram."""
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(name, time.monotonic() - start, **labels)

    def event(self, kind: str, **fields: Any) -> None:
        """Append one structured record to the bounded event log."""
        record = {"time": time.time(), "kind": str(kind)}
        record.update({str(k): v for k, v in fields.items()})
        with self._lock:
            self._events.append(record)

    # ------------------------------------------------------------------ #
    # read paths
    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: Any) -> float:
        """One counter's value (0 when it never fired)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every label set (0 when it never fired)."""
        with self._lock:
            return sum(
                value for (n, _), value in self._counters.items() if n == name
            )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of everything recorded so far."""
        with self._lock:
            counters = [
                {"name": name, "labels": _labels_dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": _labels_dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            histograms = [
                {
                    "name": name,
                    "labels": _labels_dict(labels),
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in zip(
                            list(histogram.bounds) + ["+Inf"],
                            histogram.bucket_counts,
                        )
                    ],
                    "sum": histogram.total,
                    "count": histogram.count,
                }
                for (name, labels), histogram in sorted(self._histograms.items())
            ]
            events = list(self._events)
        return {
            "metrics_format": METRICS_FORMAT_VERSION,
            "started_at": self._started_at,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "events": events,
        }

    def render_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format (0.0.4)."""
        snapshot = self.snapshot()
        lines: List[str] = []

        def fmt(name: str, labels: Mapping[str, str], value: float) -> str:
            if labels:
                inner = ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
                )
                return f"{name}{{{inner}}} {_format_value(value)}"
            return f"{name} {_format_value(value)}"

        for seen_type, entries in (("counter", snapshot["counters"]),
                                   ("gauge", snapshot["gauges"])):
            typed: Dict[str, None] = {}
            for entry in entries:
                if entry["name"] not in typed:
                    typed[entry["name"]] = None
                    lines.append(f"# TYPE {entry['name']} {seen_type}")
                lines.append(fmt(entry["name"], entry["labels"], entry["value"]))
        typed_hist: Dict[str, None] = {}
        for entry in snapshot["histograms"]:
            name = entry["name"]
            if name not in typed_hist:
                typed_hist[name] = None
                lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bucket in entry["buckets"]:
                cumulative += bucket["count"]
                le = bucket["le"] if bucket["le"] == "+Inf" else _format_value(bucket["le"])
                labels = dict(entry["labels"])
                labels["le"] = str(le)
                lines.append(fmt(f"{name}_bucket", labels, cumulative))
            lines.append(fmt(f"{name}_sum", entry["labels"], entry["sum"]))
            lines.append(fmt(f"{name}_count", entry["labels"], entry["count"]))
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget everything (tests isolate themselves with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._events.clear()
            self._started_at = time.time()


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


# --------------------------------------------------------------------------- #
# the process-global registry (module-level convenience front end)
# --------------------------------------------------------------------------- #
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process's one shared registry (what every hook point writes to)."""
    return _registry


def inc(name: str, amount: float = 1, **labels: Any) -> None:
    """Bump a counter on the process registry."""
    _registry.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the process registry."""
    _registry.set_gauge(name, value, **labels)


def observe(name: str, seconds: float, **labels: Any) -> None:
    """Record a duration sample on the process registry."""
    _registry.observe(name, seconds, **labels)


def timed(name: str, **labels: Any):
    """Time a ``with`` block into the process registry."""
    return _registry.timed(name, **labels)


def event(kind: str, **fields: Any) -> None:
    """Append a structured event to the process registry's log."""
    _registry.event(kind, **fields)


def reset() -> None:
    """Reset the process registry (test isolation)."""
    _registry.reset()


# --------------------------------------------------------------------------- #
# snapshot files (--metrics-out / `repro metrics`)
# --------------------------------------------------------------------------- #
def write_snapshot(path: "Path | str") -> Path:
    """Write the process registry's snapshot as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(_registry.snapshot(), sort_keys=True, indent=2) + "\n"
    )
    return path


def load_snapshot(path: "Path | str") -> Dict[str, Any]:
    """Read a ``--metrics-out`` snapshot file back (validating the format)."""
    data = json.loads(Path(path).read_text())
    if data.get("metrics_format") != METRICS_FORMAT_VERSION:
        raise ValueError(
            f"{path} is not a metrics snapshot this version understands "
            f"(metrics_format={data.get('metrics_format')!r})"
        )
    return data


def snapshot_counter_total(
    snapshot: Mapping[str, Any], name: str, **labels: Any
) -> float:
    """Sum a snapshot's counter over label sets matching *labels* (subset)."""
    wanted = {str(k): str(v) for k, v in labels.items()}
    total = 0.0
    for entry in snapshot.get("counters", []):
        if entry["name"] != name:
            continue
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in wanted.items()):
            total += entry["value"]
    return total


def summarize_snapshot(snapshot: Mapping[str, Any]) -> str:
    """A human summary of a snapshot (the body of ``repro metrics``)."""
    lines: List[str] = []
    counters = snapshot.get("counters", [])
    if counters:
        lines.append("counters:")
        for entry in counters:
            labels = entry.get("labels", {})
            suffix = (
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            lines.append(f"  {entry['name']}{suffix} = {entry['value']:g}")
    gauges = snapshot.get("gauges", [])
    if gauges:
        lines.append("gauges:")
        for entry in gauges:
            labels = entry.get("labels", {})
            suffix = (
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            lines.append(f"  {entry['name']}{suffix} = {entry['value']:g}")
    histograms = snapshot.get("histograms", [])
    if histograms:
        lines.append("histograms:")
        for entry in histograms:
            count = entry.get("count", 0)
            mean = entry.get("sum", 0.0) / count if count else 0.0
            lines.append(
                f"  {entry['name']}: {count} sample(s), mean {mean:.4f}s"
            )
    events = snapshot.get("events", [])
    if events:
        lines.append(f"events ({len(events)} recorded, newest last):")
        for record in events[-10:]:
            fields = ", ".join(
                f"{k}={v}" for k, v in sorted(record.items())
                if k not in ("time", "kind")
            )
            lines.append(f"  {record.get('kind', '?')}: {fields}")
    if not lines:
        return "no metrics recorded"
    return "\n".join(lines)
