"""Read-only JSON query front end over the result cache and point store.

``repro serve --cache DIR [--point-store DIR] --bind HOST:PORT`` exposes the
precomputed sweep surfaces — whole cached runs and individual grid points —
as a tiny stdlib :mod:`http.server` API:

==================================  =======================================
``GET /``                           API index (route listing + counts)
``GET /healthz``                    liveness probe (always 200 when serving)
``GET /metrics``                    process telemetry snapshot (JSON; append
                                    ``?format=prometheus`` for text exposition)
``GET /experiments``                experiment -> list of identity digests
``GET /experiments/<name>``         one experiment's digests
``GET /experiments/<name>/<digest>``  the cached run payload, verbatim
``GET /points``                     list of stored point digests
``GET /points/<digest>``            one stored point payload, verbatim
==================================  =======================================

Request paths are percent-decoded segment by segment *before* validation
(standards-compliant clients URL-encode freely), and a decoded segment that
then fails validation — ``..``, a separator smuggled through ``%2f``, an
empty string — is still a 404: decoding never widens what reaches the
filesystem.

The server is **read-only** (everything but GET is 405) and never computes:
it serves exactly the canonical bytes the coordinators stored, so a payload
fetched over HTTP is byte-identical to the cache file (and, for default-
scale figure runs, to the golden snapshot).  Unknown names, malformed
digests and traversal attempts all produce JSON 404s — path segments are
validated before they ever reach the filesystem.

Errors are structured: every non-200 body is ``{"error": ..., "reason":
...}`` with a machine-readable reason.  A digest that *was* stored but is no
longer servable — its entry was quarantined as corrupt, or written by an
incompatible format version — answers ``410 Gone`` (reason
``quarantined-corrupt`` / ``stale-format`` / ``unreadable``) so clients can
distinguish "never existed" from "lost, recompute it"; unexpected handler
failures answer a JSON 500 instead of a bare connection drop.

Like the wire protocol, this binds loopback by default; serve a routable
address only where every client is trusted (there is no authentication).
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote

from repro.runner import telemetry
from repro.runner.backends.wire import format_address
from repro.runner.cache import ResultCache
from repro.runner.point_store import PointStore

#: Path segments we accept: experiment names (``fig6``, ``scenario-...``)
#: and hex digests.  Anything else — ``..``, separators, empty — is a 404.
_SEGMENT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,128}$")


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")


class ReproQueryServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the cache/store handles."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        cache: ResultCache,
        point_store: Optional[PointStore] = None,
    ) -> None:
        self.cache = cache
        self.point_store = point_store
        super().__init__(address, _QueryHandler)

    @property
    def address(self) -> str:
        """The bound ``HOST:PORT`` (ephemeral port resolved)."""
        host, port = self.server_address[:2]
        return format_address(host, port)


class _QueryHandler(BaseHTTPRequestHandler):
    """Routes one request against the server's cache and point store."""

    server: ReproQueryServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        path, _, query = self.path.partition("?")
        # Split on the *encoded* path first, then percent-decode each
        # segment: a separator smuggled in as %2f decodes inside one
        # segment, where _SEGMENT_RE rejects it — decoding never turns one
        # segment into two, so traversal rejection is intact.
        segments = [
            unquote(segment) for segment in path.rstrip("/").split("/") if segment
        ]
        try:
            if not segments:
                return self._respond(200, self._index())
            if segments[0] == "healthz":
                return self._healthz(segments[1:])
            if segments[0] == "metrics":
                return self._metrics(segments[1:], query)
            if segments[0] == "experiments":
                return self._experiments(segments[1:])
            if segments[0] == "points":
                return self._points(segments[1:])
        except ValueError:
            pass  # malformed segment: fall through to the 404
        except Exception as exc:  # structured 500 instead of a bare drop
            return self._respond(
                500,
                {"error": f"{type(exc).__name__}: {exc}", "reason": "internal-error"},
            )
        self._respond(
            404, {"error": f"no such resource: {self.path}", "reason": "not-found"}
        )

    def _index(self) -> Dict[str, Any]:
        store = self.server.point_store
        return {
            "service": "repro-query",
            "routes": [
                "/healthz",
                "/metrics",
                "/experiments",
                "/experiments/<name>",
                "/experiments/<name>/<digest>",
                "/points",
                "/points/<digest>",
            ],
            "experiments": self.server.cache.entries(),
            "points": 0 if store is None else len(store),
        }

    def _healthz(self, rest) -> None:
        """Liveness/readiness probe: cheap, allocation-free counts only."""
        if rest:
            raise ValueError("/".join(rest))
        store = self.server.point_store
        self._respond(
            200,
            {
                "status": "ok",
                "experiments": sum(self.server.cache.entries().values()),
                "points": 0 if store is None else len(store),
            },
        )

    def _metrics(self, rest, query: str) -> None:
        """The process telemetry snapshot (JSON, or Prometheus text).

        Serves this *process's* registry — when the server runs inside a
        coordinator process (tests, embedded use) the sweep's own dispatch
        and store counters show up here; a standalone ``repro serve`` shows
        the serving-side counters (requests, cache hits from payload reads).
        """
        if rest:
            raise ValueError("/".join(rest))
        wants = parse_qs(query).get("format", ["json"])[-1].lower()
        if wants == "prometheus":
            body = telemetry.registry().render_prometheus().encode("utf-8")
            return self._respond_bytes(
                200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
        self._respond(200, telemetry.registry().snapshot())

    def _experiments(self, rest) -> None:
        cache = self.server.cache
        if not rest:
            listing: Dict[str, list] = {}
            for experiment, digest, _path in cache.iter_entries():
                listing.setdefault(experiment, []).append(digest)
            return self._respond(200, listing)
        for segment in rest:
            if not _SEGMENT_RE.match(segment):
                raise ValueError(segment)
        if len(rest) == 1:
            digests = [
                digest
                for experiment, digest, _path in cache.iter_entries()
                if experiment == rest[0]
            ]
            if not digests:
                return self._respond(
                    404,
                    {"error": f"no cached runs for {rest[0]!r}", "reason": "not-found"},
                )
            return self._respond(200, {rest[0]: digests})
        if len(rest) == 2:
            payload, status = cache.load_with_status(rest[0], rest[1])
            if payload is None:
                return self._respond_lost(f"cached run {rest[0]}/{rest[1]}", status)
            return self._respond(200, payload)
        raise ValueError("/".join(rest))

    def _points(self, rest) -> None:
        store = self.server.point_store
        if store is None:
            return self._respond(
                404, {"error": "no point store attached", "reason": "not-found"}
            )
        if not rest:
            return self._respond(200, {"points": list(store.iter_digests())})
        if len(rest) == 1:
            try:
                payload, status = store.load_payload_with_status(rest[0])
            except ValueError:
                payload, status = None, "missing"
            if payload is None:
                return self._respond_lost(f"stored point {rest[0]}", status)
            return self._respond(200, payload)
        raise ValueError("/".join(rest))

    def _respond_lost(self, what: str, status: str) -> None:
        """404 for never-stored entries, 410 for stored-but-unservable ones.

        410 tells a client "this existed; recompute it" — its entry was
        quarantined as corrupt, written by an incompatible format version,
        or is unreadable on disk.
        """
        if status == "missing":
            return self._respond(
                404, {"error": f"no {what}", "reason": "not-found"}
            )
        reason = "quarantined-corrupt" if status == "corrupt" else status
        self._respond(410, {"error": f"{what} is no longer servable", "reason": reason})

    # ------------------------------------------------------------------ #
    def _respond(self, status: int, payload: Any) -> None:
        self._respond_bytes(status, _json_bytes(payload), "application/json")

    def _respond_bytes(self, status: int, body: bytes, content_type: str) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (ConnectionError, OSError):
            # The client went away mid-response (BrokenPipeError and kin).
            # Returning quietly here is the fix, not a shrug: letting this
            # propagate would land in do_GET's generic handler, which would
            # then try to write a 500 into the same dead socket and dump a
            # traceback for a condition that is entirely the client's.
            telemetry.inc("serve_client_disconnects_total")
            self.close_connection = True
            return
        telemetry.inc("serve_requests_total", status=status)

    def do_POST(self) -> None:  # noqa: N802
        self._method_not_allowed()

    def do_PUT(self) -> None:  # noqa: N802
        self._method_not_allowed()

    def do_DELETE(self) -> None:  # noqa: N802
        self._method_not_allowed()

    def _method_not_allowed(self) -> None:
        self._respond(405, {"error": "read-only service: GET only"})

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; `repro serve` prints its own status line


def build_server(
    cache_dir: "Path | str",
    *,
    point_store_dir: "Path | str | None" = None,
    bind: str = "127.0.0.1:8000",
) -> ReproQueryServer:
    """Construct (and bind) the query server without starting it.

    Split from :func:`serve_forever_from_cli` so tests can bind an ephemeral
    port, drive requests and shut the server down deterministically.
    """
    from repro.runner.backends.wire import parse_address

    host, port = parse_address(bind)
    store = None if point_store_dir is None else PointStore(point_store_dir)
    return ReproQueryServer(
        (host, port), cache=ResultCache(cache_dir), point_store=store
    )


def serve_forever_from_cli(
    cache_dir: "Path | str",
    *,
    point_store_dir: "Path | str | None" = None,
    bind: str = "127.0.0.1:8000",
    log=print,
) -> int:
    """The blocking body of ``repro serve`` (returns a process exit code)."""
    server = build_server(cache_dir, point_store_dir=point_store_dir, bind=bind)
    log(
        f"repro serve: cache={cache_dir}"
        + (f" point-store={point_store_dir}" if point_store_dir else "")
        + f" listening on http://{server.address}/ (read-only; Ctrl-C stops)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
