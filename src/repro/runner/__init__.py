"""Parallel experiment execution: sharding, backends, caching, registry, CLI.

Public surface:

* :class:`~repro.runner.parallel.ParallelRunner` — the streaming scheduler
  (deterministic sharding, ordered collection, adaptive stopping).
* :mod:`repro.runner.backends` — pluggable execution backends (``serial``,
  ``process``, ``socket``) the scheduler hands work items to; all of them
  produce bit-identical results for the same plan.
* :mod:`repro.runner.tasks` — the picklable work items drivers decompose
  their sweeps into, plus their keyed-seeding contract.
* :mod:`repro.runner.registry` — the :class:`ExperimentSpec` registry behind
  ``python -m repro run <experiment>``.
* :class:`~repro.runner.cache.ResultCache` — on-disk JSON result cache.
* :mod:`repro.runner.telemetry` — the process-wide metrics registry every
  layer above reports into (counters, gauges, duration histograms, event
  log); pure observability, never part of a run identity.
"""

from repro.runner import telemetry
from repro.runner.backends import (
    ExecutionBackend,
    create_execution_backend,
    execution_backend_names,
    register_execution_backend,
)
from repro.runner.cache import ResultCache, config_digest
from repro.runner.parallel import (
    AdaptiveEstimate,
    ParallelRunner,
    resolve_runner,
    runner_scope,
)

# The registry imports the experiment drivers, and the drivers import
# repro.runner.parallel / .tasks (hence this package __init__) — so the
# registry surface is re-exported lazily to keep the import graph acyclic.
_REGISTRY_EXPORTS = (
    "EXPERIMENTS",
    "ExperimentRun",
    "ExperimentSpec",
    "experiment_names",
    "get_experiment",
    "run_experiment",
)


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from repro.runner import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdaptiveEstimate",
    "EXPERIMENTS",
    "ExecutionBackend",
    "ExperimentRun",
    "ExperimentSpec",
    "ParallelRunner",
    "ResultCache",
    "config_digest",
    "create_execution_backend",
    "execution_backend_names",
    "experiment_names",
    "get_experiment",
    "register_execution_backend",
    "resolve_runner",
    "run_experiment",
    "runner_scope",
    "telemetry",
]
