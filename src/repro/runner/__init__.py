"""Parallel experiment execution: sharding, caching, registry and CLI.

Public surface:

* :class:`~repro.runner.parallel.ParallelRunner` — deterministic sharded
  execution (serial fallback, process pool, adaptive stopping).
* :mod:`repro.runner.tasks` — the picklable work items drivers decompose
  their sweeps into, plus their keyed-seeding contract.
* :mod:`repro.runner.registry` — the :class:`ExperimentSpec` registry behind
  ``python -m repro run <experiment>``.
* :class:`~repro.runner.cache.ResultCache` — on-disk JSON result cache.
"""

from repro.runner.cache import ResultCache, config_digest
from repro.runner.parallel import AdaptiveEstimate, ParallelRunner

# The registry imports the experiment drivers, and the drivers import
# repro.runner.parallel / .tasks (hence this package __init__) — so the
# registry surface is re-exported lazily to keep the import graph acyclic.
_REGISTRY_EXPORTS = (
    "EXPERIMENTS",
    "ExperimentRun",
    "ExperimentSpec",
    "experiment_names",
    "get_experiment",
    "run_experiment",
)


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from repro.runner import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdaptiveEstimate",
    "EXPERIMENTS",
    "ExperimentRun",
    "ExperimentSpec",
    "ParallelRunner",
    "ResultCache",
    "config_digest",
    "experiment_names",
    "get_experiment",
    "run_experiment",
]
