"""Deterministically-sharded parallel execution of experiment workloads.

The paper stresses that "meaningful throughput evaluation requires a vast
amount of Monte-Carlo simulations averaging over various wireless channel
conditions"; this module provides the execution substrate for that averaging:

* :class:`ParallelRunner` — executes a list of independent, picklable work
  items over a :class:`concurrent.futures.ProcessPoolExecutor` (or serially
  in-process for ``workers <= 1``) and returns results **in submission
  order**.
* Deterministic sharding — a workload is decomposed into work items *before*
  execution, and every item derives its random stream from a
  :func:`repro.utils.rng.keyed_seed_sequence` spawn key that encodes the
  item's position in the sweep, never the worker that happens to execute it.
  Consequently serial and parallel runs of the same plan are bit-identical.
* Adaptive stopping — :meth:`ParallelRunner.run_adaptive_proportion` keeps
  scheduling fixed-size packet chunks in fixed-size rounds until the Wilson
  confidence interval from :func:`repro.core.montecarlo`
  ``proportion_confidence_interval`` meets the requested relative error (or
  the ``required_packets_for_bler`` budget for the smallest BLER of interest
  is exhausted).  Because rounds — not workers — are the scheduling unit, the
  stopping decision is also independent of the worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.montecarlo import (
    EstimateWithConfidence,
    proportion_confidence_interval,
    required_packets_for_bler,
)
from repro.utils.validation import ensure_positive_int

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def default_workers() -> int:
    """Worker count used when the caller asks for ``workers=0`` ("auto")."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Outcome of an adaptively-stopped proportion (BLER) estimation.

    Attributes
    ----------
    estimate:
        Wilson-interval estimate of the proportion at the stopping point.
    errors, trials:
        Raw counts accumulated over all executed chunks.
    num_chunks:
        Number of chunks executed before stopping.
    stop_reason:
        ``"confident"`` (interval met the target), ``"budget"`` (the
        ``required_packets_for_bler`` budget for the BLER floor was spent) or
        ``"max_packets"`` (hard trial ceiling hit).
    """

    estimate: EstimateWithConfidence
    errors: int
    trials: int
    num_chunks: int
    stop_reason: str


class ParallelRunner:
    """Execute independent work items across processes, deterministically.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``workers <= 1`` executes serially in
        the calling process (the fallback used by tests and by environments
        without ``fork``/``spawn`` support); ``workers == 0`` means "one per
        CPU".  The *results* of a run never depend on this value — only the
        wall-clock time does.
    mp_context:
        Multiprocessing start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``).  Defaults to ``"fork"`` where available (cheap on
        Linux: workers inherit the imported simulator modules) and the
        platform default elsewhere.
    """

    def __init__(self, workers: int = 1, *, mp_context: Optional[str] = None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.workers = workers if workers > 0 else default_workers()
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self.mp_context = mp_context

    # ------------------------------------------------------------------ #
    @classmethod
    def serial(cls) -> "ParallelRunner":
        """A runner that executes everything in the calling process."""
        return cls(workers=1)

    @property
    def is_serial(self) -> bool:
        """Whether work runs in-process (no executor involved)."""
        return self.workers <= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRunner(workers={self.workers}, mp_context={self.mp_context!r})"

    # ------------------------------------------------------------------ #
    def map(self, fn: Callable[[TaskT], ResultT], tasks: Sequence[TaskT]) -> List[ResultT]:
        """Run ``fn`` over *tasks* and return results in task order.

        ``fn`` and every task must be picklable (module-level function plus
        dataclass/tuple payloads) when more than one worker is used.  Because
        each task carries its own seed material, the output is identical for
        any worker count — including the serial fallback.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.is_serial or len(tasks) == 1:
            return [fn(task) for task in tasks]
        context = (
            multiprocessing.get_context(self.mp_context) if self.mp_context else None
        )
        max_workers = min(self.workers, len(tasks))
        with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    def run_adaptive_proportion(
        self,
        make_task: Callable[[int], TaskT],
        fn: Callable[[TaskT], Tuple[int, int]],
        *,
        confidence: float = 0.95,
        relative_error: float = 0.3,
        bler_floor: float = 1e-3,
        chunks_per_round: int = 4,
        min_trials: int = 32,
        max_trials: Optional[int] = None,
        map_chunks: Optional[
            Callable[["ParallelRunner", List[TaskT]], Sequence[Tuple[int, int]]]
        ] = None,
    ) -> AdaptiveEstimate:
        """Estimate a proportion (e.g. BLER), stopping once it is confident.

        Parameters
        ----------
        make_task:
            Builds the work item for chunk *i*; the item must derive its
            random stream from the chunk index so the schedule (hence the
            result) is independent of the worker count.
        fn:
            Executes one chunk and returns ``(errors, trials)``.
        map_chunks:
            Optional round executor replacing the default ``self.map(fn,
            chunks)`` — e.g. to pool a round's chunks into cross-work-item
            decode batches (see :mod:`repro.runner.tasks`).  Must return one
            ``(errors, trials)`` pair per chunk, in chunk order; because a
            round's membership is fixed before execution, pooling cannot
            change the stopping decision.
        confidence, relative_error:
            Stop once the Wilson interval's half-width is at most
            ``relative_error`` times the estimate (with at least one error
            observed and ``min_trials`` trials accumulated).
        bler_floor:
            Smallest proportion worth resolving; once
            :func:`required_packets_for_bler` packets for this floor have
            been spent without reaching confidence, the sweep stops (an
            error-free point would otherwise never terminate).
        chunks_per_round:
            Chunks scheduled per decision round.  This — not ``workers`` —
            is the scheduling quantum, so the stopping point is
            deterministic.
        min_trials, max_trials:
            Soft floor / hard ceiling on accumulated trials.
        """
        ensure_positive_int(chunks_per_round, "chunks_per_round")
        ensure_positive_int(min_trials, "min_trials")
        if not 0.0 < bler_floor < 1.0:
            raise ValueError("bler_floor must be in (0, 1)")
        budget = required_packets_for_bler(bler_floor, relative_error)
        if max_trials is not None:
            ensure_positive_int(max_trials, "max_trials")

        errors = 0
        trials = 0
        num_chunks = 0
        stop_reason = "budget"
        while True:
            chunk_tasks = [make_task(num_chunks + i) for i in range(chunks_per_round)]
            round_counts = (
                map_chunks(self, chunk_tasks)
                if map_chunks is not None
                else self.map(fn, chunk_tasks)
            )
            for chunk_errors, chunk_trials in round_counts:
                errors += int(chunk_errors)
                trials += int(chunk_trials)
            num_chunks += len(chunk_tasks)

            if trials >= min_trials and errors > 0:
                interval = proportion_confidence_interval(errors, trials, confidence)
                if interval.half_width <= relative_error * interval.value:
                    stop_reason = "confident"
                    break
            if max_trials is not None and trials >= max_trials:
                stop_reason = "max_packets"
                break
            if trials >= budget:
                stop_reason = "budget"
                break

        estimate = proportion_confidence_interval(errors, trials, confidence)
        return AdaptiveEstimate(
            estimate=estimate,
            errors=errors,
            trials=trials,
            num_chunks=num_chunks,
            stop_reason=stop_reason,
        )
