"""Deterministically-sharded execution of experiment workloads.

The paper stresses that "meaningful throughput evaluation requires a vast
amount of Monte-Carlo simulations averaging over various wireless channel
conditions"; this module provides the scheduling layer for that averaging:

* :class:`ParallelRunner` — the streaming scheduler.  It decomposes nothing
  itself; it takes a list of independent, picklable work items, hands them
  to a pluggable :class:`~repro.runner.backends.ExecutionBackend` (serial,
  local process pool, or socket-distributed workers) via
  :meth:`~ParallelRunner.submit_round`, and reassembles the streamed
  results **in submission order** with
  :meth:`~ParallelRunner.collect_in_order`.
* Deterministic sharding — a workload is decomposed into work items *before*
  execution, and every item derives its random stream from a
  :func:`repro.utils.rng.keyed_seed_sequence` spawn key that encodes the
  item's position in the sweep, never the worker that happens to execute it.
  Consequently serial, process-pool and distributed runs of the same plan
  are bit-identical, and the backend is excluded from the run identity.
* Adaptive stopping — :meth:`ParallelRunner.run_adaptive_rounds` is the one
  round-scheduling loop shared by the defect-free BLER estimator
  (:meth:`ParallelRunner.run_adaptive_proportion`) and the fault-map grid
  (:func:`repro.runner.tasks.run_fault_map_grid`): it keeps scheduling
  fixed-size rounds until the Wilson confidence interval from
  :func:`repro.core.montecarlo` ``proportion_confidence_interval`` meets the
  requested relative error or a packet budget is exhausted.  Because rounds
  — not workers — are the scheduling unit, the stopping decision is also
  independent of the worker count and of the backend.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.core.montecarlo import (
    EstimateWithConfidence,
    proportion_confidence_interval,
    required_packets_for_bler,
)
from repro.runner import telemetry
from repro.runner.backends import (
    DEFAULT_BACKEND,
    DEFAULT_PARALLEL_BACKEND,
    ExecutionBackend,
    TaskQuarantined,
    create_execution_backend,
    default_workers,
)
from repro.utils.validation import ensure_positive_int

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Sentinel marking a result slot the backend never filled.
_MISSING = object()


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Outcome of an adaptively-stopped proportion (BLER) estimation.

    Attributes
    ----------
    estimate:
        Wilson-interval estimate of the proportion at the stopping point.
    errors, trials:
        Raw counts accumulated over all executed chunks.
    num_chunks:
        Number of chunks executed before stopping.
    stop_reason:
        ``"confident"`` (interval met the target), ``"budget"`` (the
        ``required_packets_for_bler`` budget for the BLER floor was spent) or
        ``"max_packets"`` (hard trial ceiling hit).
    """

    estimate: EstimateWithConfidence
    errors: int
    trials: int
    num_chunks: int
    stop_reason: str


@dataclass(frozen=True)
class AdaptiveRounds:
    """Raw outcome of one :meth:`ParallelRunner.run_adaptive_rounds` loop."""

    errors: int
    trials: int
    num_items: int
    stop_reason: str


class ParallelRunner:
    """Schedule independent work items over an execution backend.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``workers == 0`` means "one per CPU".
        The *results* of a run never depend on this value — only the
        wall-clock time does.
    mp_context:
        Multiprocessing start-method name for the process backend
        (``"fork"``, ``"spawn"``, ``"forkserver"``).
    backend:
        Execution backend: a name from
        :func:`repro.runner.backends.execution_backend_names` (``serial``,
        ``process``, ``socket``), a built
        :class:`~repro.runner.backends.ExecutionBackend` instance, or
        ``None`` for the historical default — serial for ``workers <= 1``,
        the local process pool otherwise.  The backend choice can never
        change results; it is pure execution topology.
    quarantine_store:
        Optional :class:`~repro.runner.cache.QuarantineStore` that receives
        an on-disk record (task identity + traceback) for every
        :class:`TaskQuarantined` sentinel a backend yields under
        ``on_task_error="quarantine"``.  In-memory sentinels additionally
        accumulate on :attr:`task_failures` for the end-of-run report.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        mp_context: Optional[str] = None,
        backend: Union[str, ExecutionBackend, None] = None,
        quarantine_store: Optional[object] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.workers = workers if workers > 0 else default_workers()
        if backend is None:
            backend = DEFAULT_BACKEND if workers == 1 else DEFAULT_PARALLEL_BACKEND
        self._backend = create_execution_backend(
            backend, workers=self.workers, mp_context=mp_context
        )
        self.mp_context = getattr(self._backend, "mp_context", mp_context)
        self.quarantine_store = quarantine_store
        #: Every quarantined work item seen by this runner (for reporting).
        self.task_failures: List[TaskQuarantined] = []

    # ------------------------------------------------------------------ #
    @classmethod
    def serial(cls) -> "ParallelRunner":
        """A runner that executes everything in the calling process."""
        return cls(workers=1)

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend work is scheduled onto."""
        return self._backend

    @property
    def is_serial(self) -> bool:
        """Whether work runs in-process (no executor involved)."""
        return self._backend.is_serial

    def close(self) -> None:
        """Release the backend's resources (pools, sockets, worker daemons)."""
        self._backend.close()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRunner(workers={self.workers}, backend={self._backend!r})"

    # ------------------------------------------------------------------ #
    # the streaming scheduler
    # ------------------------------------------------------------------ #
    def submit_round(
        self, fn: Callable[[TaskT], ResultT], tasks: Sequence[TaskT]
    ) -> Iterator[Tuple[int, ResultT]]:
        """Hand one round of tasks to the backend, streaming ``(index, result)``.

        Pairs arrive in completion order (backend-dependent); every index is
        delivered exactly once.  ``fn`` and every task must be picklable
        (module-level function plus dataclass/tuple payloads) for any
        backend that leaves the calling process.
        """
        return self._backend.submit(fn, list(tasks))

    @staticmethod
    def collect_in_order(
        stream: Iterable[Tuple[int, ResultT]], count: int
    ) -> List[ResultT]:
        """Reassemble a :meth:`submit_round` stream into submission order."""
        results: List = [_MISSING] * count
        for index, value in stream:
            results[index] = value
        missing = [index for index, value in enumerate(results) if value is _MISSING]
        if missing:
            raise RuntimeError(f"backend never delivered results for items {missing}")
        return results

    def map(
        self,
        fn: Callable[[TaskT], ResultT],
        tasks: Sequence[TaskT],
        *,
        allow_quarantined: bool = False,
    ) -> List[ResultT]:
        """Run ``fn`` over *tasks* and return results in task order.

        Because each task carries its own seed material, the output is
        identical for any worker count and any backend — including the
        serial fallback.

        Under a backend with ``on_task_error="quarantine"``, a failing item
        comes back as a :class:`TaskQuarantined` sentinel instead of
        aborting the round.  Every sentinel is recorded (in memory, and on
        disk when a :attr:`quarantine_store` is attached); then, unless the
        caller opted in with *allow_quarantined* — meaning it knows what a
        missing result means for its aggregate — the first sentinel raises,
        because silently averaging over a partial result set would corrupt
        the science.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        backend_name = getattr(self._backend, "name", "unknown")
        with telemetry.timed("runner_round_seconds", backend=backend_name):
            results = self.collect_in_order(self.submit_round(fn, tasks), len(tasks))
        telemetry.inc("runner_tasks_total", len(tasks), backend=backend_name)
        quarantined = [r for r in results if isinstance(r, TaskQuarantined)]
        if quarantined:
            self._record_quarantined(fn, tasks, quarantined)
            if not allow_quarantined:
                raise RuntimeError(
                    f"{len(quarantined)} work item(s) were quarantined but this "
                    f"computation cannot tolerate missing results "
                    f"({quarantined[0].summary()}); rerun with "
                    f"--on-task-error=fail to abort on the first traceback:\n"
                    f"{quarantined[0].error}"
                )
        return results

    def _record_quarantined(
        self,
        fn: Callable[[TaskT], ResultT],
        tasks: Sequence[TaskT],
        quarantined: Sequence[TaskQuarantined],
    ) -> None:
        fn_name = getattr(fn, "__qualname__", None) or repr(fn)
        self.task_failures.extend(quarantined)
        if self.quarantine_store is None:
            return
        for sentinel in quarantined:
            self.quarantine_store.record(
                fn_name,
                tasks[sentinel.index],
                error=sentinel.error,
                attempts=sentinel.attempts,
                workers=sentinel.workers,
            )

    # ------------------------------------------------------------------ #
    # the unified adaptive round loop
    # ------------------------------------------------------------------ #
    def run_adaptive_rounds(
        self,
        schedule_round: Callable[[int, int], Sequence[TaskT]],
        execute_round: Callable[["ParallelRunner", Sequence[TaskT]], Iterable[ResultT]],
        to_counts: Callable[[ResultT], Tuple[int, int]],
        *,
        confidence: float,
        relative_error: float,
        min_trials: int,
        budget: int,
        max_trials: Optional[int] = None,
        on_result: Optional[Callable[[ResultT], None]] = None,
        initial: Optional[Tuple[int, int, int]] = None,
        on_round: Optional[Callable[[Sequence[ResultT]], None]] = None,
    ) -> AdaptiveRounds:
        """The one round loop behind every adaptive (early-stopped) estimate.

        Keeps scheduling rounds of work items until the Wilson interval of
        the accumulated ``(errors, trials)`` proportion meets the target, or
        a budget/ceiling is spent.  Rounds — not workers — are the
        scheduling quantum, and round membership is fixed *before*
        execution, so the stopping decision is independent of the worker
        count and of the execution backend.

        Parameters
        ----------
        schedule_round:
            ``schedule_round(num_items, trials)`` builds the next round's
            work items from the number of items already scheduled and the
            trials accumulated so far (lets callers shrink the final round
            to what a budget still covers).
        execute_round:
            Executes one round — typically :meth:`map`, possibly after
            pooling the round's items into cross-work-item decode batches —
            and returns/yields one result per item, in item order.
        to_counts:
            Projects one result to its ``(errors, trials)`` contribution.
        on_result:
            Optional hook receiving every result as it streams in (used by
            the fault-map grid to keep the per-die outcomes).
        confidence, relative_error:
            Stop (``"confident"``) once the Wilson interval's half-width is
            at most ``relative_error`` times the estimate — with at least
            one error observed and ``min_trials`` trials accumulated.
        budget:
            Trial budget after which an error-free estimate stops
            (``"budget"``).
        max_trials:
            Optional hard trial ceiling (``"max_packets"``).
        initial:
            Optional ``(errors, trials, num_items)`` state to resume from —
            a sweep journal replays its recorded rounds into these counters
            and the loop continues exactly where the interrupted run
            stopped.  ``None`` starts fresh.
        on_round:
            Optional hook receiving each completed round's result list
            *after* its counts are accumulated (the journal's checkpoint
            writer: by the time the hook runs, the round is fully
            accounted and safe to record).

        The stop conditions are evaluated at the **top** of the loop, in
        the same precedence order they historically held after each round
        (confident, then max_trials, then budget).  For a fresh run this is
        behaviourally identical — zero trials can satisfy none of them
        (``min_trials`` and ``budget`` are positive) — but a *resumed* run
        whose replayed state already meets a stop condition must terminate
        without scheduling another round, or resume would change results.
        """
        errors, trials, num_items = initial if initial is not None else (0, 0, 0)
        errors, trials, num_items = int(errors), int(trials), int(num_items)
        while True:
            if trials >= min_trials and errors > 0:
                interval = proportion_confidence_interval(errors, trials, confidence)
                if interval.half_width <= relative_error * interval.value:
                    stop_reason = "confident"
                    break
            if max_trials is not None and trials >= max_trials:
                stop_reason = "max_packets"
                break
            if trials >= budget:
                stop_reason = "budget"
                break
            round_tasks = list(schedule_round(num_items, trials))
            round_results: List[ResultT] = []
            for result in execute_round(self, round_tasks):
                if on_result is not None:
                    on_result(result)
                round_results.append(result)
                result_errors, result_trials = to_counts(result)
                errors += int(result_errors)
                trials += int(result_trials)
            num_items += len(round_tasks)
            if on_round is not None:
                on_round(round_results)
        telemetry.inc("runner_adaptive_stops_total", reason=stop_reason)
        telemetry.event(
            "adaptive-stop",
            reason=stop_reason,
            errors=errors,
            trials=trials,
            num_items=num_items,
        )
        return AdaptiveRounds(
            errors=errors, trials=trials, num_items=num_items, stop_reason=stop_reason
        )

    # ------------------------------------------------------------------ #
    def run_adaptive_proportion(
        self,
        make_task: Callable[[int], TaskT],
        fn: Callable[[TaskT], Tuple[int, int]],
        *,
        confidence: float = 0.95,
        relative_error: float = 0.3,
        bler_floor: float = 1e-3,
        chunks_per_round: int = 4,
        min_trials: int = 32,
        max_trials: Optional[int] = None,
        map_chunks: Optional[
            Callable[["ParallelRunner", List[TaskT]], Sequence[Tuple[int, int]]]
        ] = None,
    ) -> AdaptiveEstimate:
        """Estimate a proportion (e.g. BLER), stopping once it is confident.

        Parameters
        ----------
        make_task:
            Builds the work item for chunk *i*; the item must derive its
            random stream from the chunk index so the schedule (hence the
            result) is independent of the worker count.
        fn:
            Executes one chunk and returns ``(errors, trials)``.
        map_chunks:
            Optional round executor replacing the default ``self.map(fn,
            chunks)`` — e.g. to pool a round's chunks into cross-work-item
            decode batches (see :mod:`repro.runner.tasks`).  Must return one
            ``(errors, trials)`` pair per chunk, in chunk order; because a
            round's membership is fixed before execution, pooling cannot
            change the stopping decision.
        confidence, relative_error:
            Stop once the Wilson interval's half-width is at most
            ``relative_error`` times the estimate (with at least one error
            observed and ``min_trials`` trials accumulated).
        bler_floor:
            Smallest proportion worth resolving; once
            :func:`required_packets_for_bler` packets for this floor have
            been spent without reaching confidence, the sweep stops (an
            error-free point would otherwise never terminate).
        chunks_per_round:
            Chunks scheduled per decision round.  This — not ``workers`` —
            is the scheduling quantum, so the stopping point is
            deterministic.
        min_trials, max_trials:
            Soft floor / hard ceiling on accumulated trials.
        """
        ensure_positive_int(chunks_per_round, "chunks_per_round")
        ensure_positive_int(min_trials, "min_trials")
        if not 0.0 < bler_floor < 1.0:
            raise ValueError("bler_floor must be in (0, 1)")
        budget = required_packets_for_bler(bler_floor, relative_error)
        if max_trials is not None:
            ensure_positive_int(max_trials, "max_trials")

        def schedule_round(num_items: int, _trials: int) -> List[TaskT]:
            return [make_task(num_items + i) for i in range(chunks_per_round)]

        def execute_round(
            runner: "ParallelRunner", chunks: Sequence[TaskT]
        ) -> Sequence[Tuple[int, int]]:
            if map_chunks is not None:
                return map_chunks(runner, list(chunks))
            return runner.map(fn, chunks)

        rounds = self.run_adaptive_rounds(
            schedule_round,
            execute_round,
            lambda counts: counts,
            confidence=confidence,
            relative_error=relative_error,
            min_trials=min_trials,
            budget=budget,
            max_trials=max_trials,
        )
        estimate = proportion_confidence_interval(rounds.errors, rounds.trials, confidence)
        return AdaptiveEstimate(
            estimate=estimate,
            errors=rounds.errors,
            trials=rounds.trials,
            num_chunks=rounds.num_items,
            stop_reason=rounds.stop_reason,
        )


def resolve_runner(runner: Union["ParallelRunner", str, None]) -> "ParallelRunner":
    """Normalise a driver's ``runner`` argument.

    Accepts ``None`` (in-process serial), a built :class:`ParallelRunner`,
    or an execution-backend name (``"serial"``, ``"process"``, ``"socket"``)
    — the latter is how ``--execution-backend`` threads through the drivers
    without every call site constructing a runner.  Asking for a backend by
    name means "actually use it", so named backends scale to one worker per
    CPU; construct a :class:`ParallelRunner` for any other worker count.
    """
    if runner is None:
        return ParallelRunner.serial()
    if isinstance(runner, ParallelRunner):
        return runner
    if isinstance(runner, str):
        return ParallelRunner(workers=0, backend=runner)
    raise TypeError(
        f"runner must be None, a ParallelRunner or a backend name, "
        f"got {type(runner).__name__}"
    )


@contextmanager
def runner_scope(
    runner: Union["ParallelRunner", str, None]
) -> Iterator["ParallelRunner"]:
    """Resolve *runner* for the duration of one driver run.

    A runner the caller provided is yielded as-is and left open (its
    lifecycle belongs to the caller); one built here — from ``None`` or a
    backend name — is closed on exit, so a driver invoked with
    ``runner="socket"`` tears down its coordinator and worker daemons
    instead of leaking them.
    """
    resolved = resolve_runner(runner)
    try:
        yield resolved
    finally:
        if resolved is not runner:
            resolved.close()
