"""Append-only sweep journal: checkpoint/resume for interrupted coordinators.

A :class:`SweepJournal` is a JSONL file under the cache directory
(``<cache>/journal/<experiment>-<digest>.jsonl``, keyed by the same
run-identity digest as the result cache) that records every *completed* unit
of sweep progress as it happens:

* a merged fault-map grid point (``fault_point``),
* a merged defect-free BLER cell (``bler_cell``),
* one completed adaptive round of die outcomes (``adaptive_round``) —
  including everything the adaptive estimator needs to reconstruct its
  ``(errors, trials, num_items)`` state mid-point.

Appends are flushed and fsynced per entry, so after ``kill -9`` the file
holds every entry that was ever reported written, plus at most one torn
trailing line.  Recovery (:meth:`SweepJournal.open_for_run` with
``resume=True``) replays the intact prefix, drops the torn tail, and the
grid loops skip everything already journaled — scheduling the *remaining*
work with the same deterministic spawn keys a fresh run would use.  Because
results round-trip losslessly (the serializers are shared with
:mod:`repro.runner.point_store`), a resumed run is **byte-identical** to an
uninterrupted one.

The journal is run-scoped scratch state: it is deleted on successful
completion (the result cache takes over), and a run started *without*
``--resume`` discards any leftover journal rather than replaying progress
the user asked to recompute.  Like the point store and the execution
backend, the journal is pure topology — never part of a run identity.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.fault_simulator import FaultSimulationPoint
from repro.harq.metrics import HarqStatistics
from repro.runner import telemetry
from repro.runner.point_store import (
    fault_point_from_json,
    fault_point_to_json,
    statistics_from_json,
    statistics_to_json,
)
from repro.runner.tasks import FaultMapOutcome

#: Bump when the entry layout changes so stale journals are discarded.
JOURNAL_FORMAT_VERSION = 1


def outcome_to_json(outcome: FaultMapOutcome) -> Dict[str, Any]:
    """Lossless JSON form of one die's :class:`FaultMapOutcome`."""
    return {
        "statistics": statistics_to_json(outcome.statistics),
        "num_faults": int(outcome.num_faults),
        "fallible_cells": int(outcome.fallible_cells),
    }


def outcome_from_json(data: Dict[str, Any]) -> FaultMapOutcome:
    """Rebuild one die's :class:`FaultMapOutcome` exactly."""
    return FaultMapOutcome(
        statistics=statistics_from_json(data["statistics"]),
        num_faults=int(data["num_faults"]),
        fallible_cells=int(data["fallible_cells"]),
    )


class SweepJournal:
    """Crash-safe progress log of one sweep run.

    Use :meth:`open_for_run` rather than constructing directly; the journal
    must be :meth:`close`\\ d (or :meth:`finalize`\\ d) when the run ends.
    A journal instance belongs to a single coordinator — there is no
    cross-process locking, matching the one-coordinator-per-run model.
    """

    def __init__(self, path: "Path | str", *, experiment: str, digest: str) -> None:
        self.path = Path(path)
        self.experiment = str(experiment)
        self.digest = str(digest)
        self._handle: Optional[Any] = None
        self._fault_points: Dict[int, FaultSimulationPoint] = {}
        self._bler_cells: Dict[int, HarqStatistics] = {}
        self._adaptive: Dict[int, List[List[FaultMapOutcome]]] = {}
        #: Intact entries replayed from disk on resume (header excluded).
        self.replayed_entries = 0
        #: Whether resume found (and dropped) a torn trailing line.
        self.recovered_truncation = False

    # ------------------------------------------------------------------ #
    @classmethod
    def open_for_run(
        cls,
        journal_dir: "Path | str",
        experiment: str,
        digest: str,
        *,
        resume: bool = False,
    ) -> "SweepJournal":
        """Open (and on *resume*, replay) the journal for one run identity."""
        path = Path(journal_dir) / f"{experiment}-{digest}.jsonl"
        journal = cls(path, experiment=experiment, digest=digest)
        journal.open(resume=resume)
        return journal

    def open(self, *, resume: bool = False) -> None:
        """Start journaling: replay on resume, else discard stale progress."""
        if resume:
            self._replay()
        elif self.path.exists():
            # A fresh run must not silently inherit a dead run's progress —
            # the user who wanted that would have passed --resume.
            self.path.unlink()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._append(
                {
                    "journal_format": JOURNAL_FORMAT_VERSION,
                    "experiment": self.experiment,
                    "digest": self.digest,
                }
            )

    def _replay(self) -> None:
        """Load the intact prefix of an existing journal, dropping torn tails."""
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        good_bytes = 0
        entries: List[Dict[str, Any]] = []
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                # The torn tail of an append interrupted by the crash.
                self.recovered_truncation = True
                break
            try:
                entries.append(json.loads(line))
            except ValueError:
                # Entries are fsynced in order, so a malformed line means
                # everything after it is unreliable too.  ValueError covers
                # JSONDecodeError and the UnicodeDecodeError a torn line
                # with invalid UTF-8 bytes raises — both truncate, never
                # crash the resume.
                self.recovered_truncation = True
                break
            good_bytes += len(line)
        if not entries or not self._header_matches(entries[0]):
            # Foreign, stale-format or empty journal: recompute from scratch.
            if entries:
                warnings.warn(
                    f"sweep journal {self.path} does not match this run "
                    f"(experiment/digest/format changed); discarding it",
                    RuntimeWarning,
                    stacklevel=3,
                )
            self.path.unlink()
            self.recovered_truncation = False
            return
        for entry in entries[1:]:
            self._ingest(entry)
            self.replayed_entries += 1
        telemetry.inc("journal_replayed_entries_total", self.replayed_entries)
        if good_bytes < len(raw):
            # Drop the torn tail on disk as well, so the appends that follow
            # start on a clean line boundary.
            with open(self.path, "rb+") as handle:
                handle.truncate(good_bytes)
            telemetry.inc("journal_truncations_total")
            telemetry.event(
                "journal-truncation",
                path=str(self.path),
                kept_entries=self.replayed_entries,
            )

    def _header_matches(self, entry: Dict[str, Any]) -> bool:
        return (
            entry.get("journal_format") == JOURNAL_FORMAT_VERSION
            and entry.get("experiment") == self.experiment
            and entry.get("digest") == self.digest
        )

    def _ingest(self, entry: Dict[str, Any]) -> None:
        kind = entry.get("type")
        if kind == "fault_point":
            self._fault_points[int(entry["index"])] = fault_point_from_json(
                entry["result"]
            )
            # Mirror record_fault_point: the completed point supersedes any
            # round-level checkpoints journaled before it.
            self._adaptive.pop(int(entry["index"]), None)
        elif kind == "bler_cell":
            self._bler_cells[int(entry["index"])] = statistics_from_json(
                entry["result"]
            )
        elif kind == "adaptive_round":
            rounds = self._adaptive.setdefault(int(entry["point"]), [])
            rounds.append([outcome_from_json(o) for o in entry["outcomes"]])
        # unknown types are ignored: a newer writer's extra entries must not
        # break an older reader that only needs the ones it understands

    # ------------------------------------------------------------------ #
    def _append(self, entry: Dict[str, Any]) -> None:
        if self._handle is None:
            raise RuntimeError("journal is not open")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        telemetry.inc("journal_appends_total")

    # fault-map grid points ------------------------------------------- #
    def completed_fault_point(self, index: int) -> Optional[FaultSimulationPoint]:
        """The journaled merged result of grid point *index*, if completed."""
        return self._fault_points.get(index)

    def record_fault_point(self, index: int, point: FaultSimulationPoint) -> None:
        """Checkpoint one completed (merged) fault-map grid point."""
        self._append(
            {
                "type": "fault_point",
                "index": int(index),
                "result": fault_point_to_json(point),
            }
        )
        self._fault_points[int(index)] = point
        # A completed point supersedes its round-level checkpoints.
        self._adaptive.pop(int(index), None)

    # defect-free BLER cells ------------------------------------------ #
    def completed_bler_cell(self, index: int) -> Optional[HarqStatistics]:
        """The journaled merged statistics of BLER cell *index*, if completed."""
        return self._bler_cells.get(index)

    def record_bler_cell(self, index: int, statistics: HarqStatistics) -> None:
        """Checkpoint one completed (merged) defect-free BLER cell."""
        self._append(
            {
                "type": "bler_cell",
                "index": int(index),
                "result": statistics_to_json(statistics),
            }
        )
        self._bler_cells[int(index)] = statistics

    # adaptive estimator state ---------------------------------------- #
    def adaptive_rounds(self, point_index: int) -> List[List[FaultMapOutcome]]:
        """Replayed completed rounds of one adaptive point (oldest first)."""
        return list(self._adaptive.get(point_index, []))

    def record_adaptive_round(
        self, point_index: int, outcomes: List[FaultMapOutcome]
    ) -> None:
        """Checkpoint one completed adaptive round of die outcomes."""
        self._append(
            {
                "type": "adaptive_round",
                "point": int(point_index),
                "outcomes": [outcome_to_json(o) for o in outcomes],
            }
        )
        self._adaptive.setdefault(int(point_index), []).append(list(outcomes))

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def finalize(self, *, success: bool) -> None:
        """End the run: on success the journal is deleted (cache takes over).

        On failure the file stays for ``--resume``; callers should report
        its path so the user knows resuming is possible.
        """
        self.close()
        if success and self.path.exists():
            self.path.unlink()

    def summary(self) -> str:
        """One human line for the CLI after a resumed run."""
        rounds = sum(len(r) for r in self._adaptive.values())
        parts = [
            f"resumed {len(self._fault_points) + len(self._bler_cells)} "
            f"completed unit(s)"
        ]
        if rounds:
            parts.append(f"{rounds} adaptive round(s)")
        if self.recovered_truncation:
            parts.append("recovered a torn tail")
        return "journal: " + ", ".join(parts)

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepJournal(path={str(self.path)!r})"
