"""The experiment registry behind ``python -m repro run <experiment>``.

Every figure driver registers an :class:`ExperimentSpec`; the registry gives
the CLI, the golden-seed regression suite and the benchmark harness one
uniform way to run any experiment and receive its results as a plain
``{name: SweepTable}`` mapping (plus JSON-able extras such as Fig. 8's
optimum protection depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.results import SweepTable
from repro.runner.cache import canonicalize
from repro.experiments import (
    fig2_bler_vs_harq,
    fig3_cell_failure,
    fig5_yield,
    fig6_throughput_vs_defects,
    fig7_msb_protection,
    fig8_efficiency,
    fig9_bitwidth,
    power_savings,
)
from repro.experiments.scales import Scale, get_scale
from repro.runner.backends import ExecutionBackend, create_execution_backend
from repro.runner.parallel import ParallelRunner
from repro.utils.rng import RngLike, resolve_entropy


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment.

    Attributes
    ----------
    name:
        CLI identifier (``fig6``, ``power_savings``, ...).
    figure:
        Paper figure / section the driver reproduces.
    summary:
        One-line description shown by ``python -m repro list``.
    run:
        Driver entry point; must accept ``(scale, seed, runner=..., **kwargs)``
        and return a :class:`SweepTable` or a dict containing tables.
    stochastic:
        Whether the result depends on the seed (analytical drivers are
        deterministic and ignore it).
    """

    name: str
    figure: str
    summary: str
    run: Callable[..., Any]
    stochastic: bool = True


@dataclass
class ExperimentRun:
    """Normalised outcome of one experiment run.

    Attributes
    ----------
    spec:
        The experiment that ran.
    scale:
        Resolved scale preset.
    seed:
        Integer entropy the run was keyed by.
    tables:
        Every :class:`SweepTable` the driver produced, by name (drivers that
        return a single table expose it as ``"table"``).
    extras:
        JSON-able non-table outputs (optimum bits, best widths, ...).
    """

    spec: ExperimentSpec
    scale: Scale
    seed: int
    tables: Dict[str, SweepTable]
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def primary_table(self) -> SweepTable:
        """The main table (``"table"`` if present, else the first by name)."""
        if "table" in self.tables:
            return self.tables["table"]
        return self.tables[sorted(self.tables)[0]]


#: All registered experiments by CLI name, in paper order.
EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (rejecting duplicate names)."""
    if spec.name in EXPERIMENTS:
        raise ValueError(f"duplicate experiment name {spec.name!r}")
    EXPERIMENTS[spec.name] = spec
    return spec


def experiment_names() -> List[str]:
    """Registered experiment names, in registration (paper) order."""
    return list(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a spec by name, with a helpful error on typos."""
    try:
        return EXPERIMENTS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {experiment_names()}"
        ) from exc


# --------------------------------------------------------------------------- #
register(
    ExperimentSpec(
        name="fig2",
        figure="Fig. 2",
        summary="decoding-failure probability over HARQ retransmissions",
        run=fig2_bler_vs_harq.run,
    )
)
register(
    ExperimentSpec(
        name="fig3",
        figure="Fig. 3",
        summary="cell failure probability vs supply voltage (analytical)",
        run=fig3_cell_failure.run,
        stochastic=False,
    )
)
register(
    ExperimentSpec(
        name="fig5",
        figure="Fig. 5",
        summary="array yield vs accepted defect count (analytical)",
        run=fig5_yield.run,
        stochastic=False,
    )
)
register(
    ExperimentSpec(
        name="fig6",
        figure="Fig. 6",
        summary="throughput and transmissions vs SNR under defect rates",
        run=fig6_throughput_vs_defects.run,
    )
)
register(
    ExperimentSpec(
        name="fig7",
        figure="Fig. 7",
        summary="throughput vs SNR protecting k MSBs at 10% defects",
        run=fig7_msb_protection.run,
    )
)
register(
    ExperimentSpec(
        name="fig8",
        figure="Fig. 8",
        summary="protection efficiency (throughput gain per area overhead)",
        run=fig8_efficiency.run,
    )
)
register(
    ExperimentSpec(
        name="fig9",
        figure="Fig. 9",
        summary="throughput vs LLR bit-width at 10% defects",
        run=fig9_bitwidth.run,
    )
)
register(
    ExperimentSpec(
        name="power_savings",
        figure="Section 6.3",
        summary="supply voltage and power savings of the HARQ LLR memory",
        run=power_savings.run,
        stochastic=False,
    )
)


# --------------------------------------------------------------------------- #
def _normalise(result: Any) -> Tuple[Dict[str, SweepTable], Dict[str, Any]]:
    """Split a driver's return value into tables and JSON-able extras."""
    if isinstance(result, SweepTable):
        return {"table": result}, {}
    if isinstance(result, dict):
        tables = {k: v for k, v in result.items() if isinstance(v, SweepTable)}
        extras = {
            str(k): canonicalize(v)
            for k, v in result.items()
            if not isinstance(v, SweepTable)
        }
        if not tables:
            raise TypeError("experiment returned a dict without any SweepTable")
        return tables, extras
    raise TypeError(f"unsupported experiment result type {type(result).__name__}")


def run_experiment(
    name: str,
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    runner: Optional[ParallelRunner] = None,
    *,
    workers: int = 1,
    execution_backend: Union[str, ExecutionBackend, None] = None,
    **kwargs: Any,
) -> ExperimentRun:
    """Run a registered experiment and normalise its outcome.

    The seed is reduced to an integer entropy first (see
    :func:`repro.utils.rng.resolve_entropy`) so the run identity recorded in
    caches and golden files is a plain number.  Execution is controlled by
    *runner* — or, when it is ``None``, by *workers* and
    *execution_backend* (a name from
    :func:`repro.runner.backends.execution_backend_names`); a runner built
    here is closed before returning.  None of these can change the result:
    execution topology is not part of the run identity.
    """
    spec = get_experiment(name)
    resolved_scale = get_scale(scale)
    entropy = resolve_entropy(seed)
    owns_runner = runner is None
    if runner is not None and (workers != 1 or execution_backend is not None):
        raise ValueError(
            "pass either runner= or workers=/execution_backend=, not both "
            "(the provided runner already fixes the execution topology)"
        )
    if runner is None:
        backend = (
            create_execution_backend(execution_backend, workers=workers)
            if execution_backend is not None
            else None
        )
        runner = ParallelRunner(workers, backend=backend)
    try:
        result = spec.run(resolved_scale, entropy, runner=runner, **kwargs)
    finally:
        if owns_runner:
            runner.close()
    tables, extras = _normalise(result)
    return ExperimentRun(
        spec=spec, scale=resolved_scale, seed=entropy, tables=tables, extras=extras
    )
