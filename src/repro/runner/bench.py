"""Front-end throughput benchmark and float32-LLR BLER characterisation.

``BENCH_decoder.json`` at the repository root records the performance
snapshot of the *whole* pipeline: the turbo-decoder kernels (written by
``benchmarks/test_decoder_throughput.py``), the end-to-end llr-dtype link
benchmark, and — from this module — the ``front_end`` section comparing the
batched transmit/channel/equalize/demap path against a verbatim copy of the
pre-batching serial front end.

The seed implementations below are faithful copies of the serial code as it
stood before the front end grew its ``(num_packets, ...)`` batch axis: a
per-packet MMSE design with no filter cache, a per-packet channel pass and a
per-packet demap.  They are kept here (like ``_SeedTurboDecoder`` in the
benchmark suite) as the fixed baseline so the reported speedup keeps meaning
the same thing as the live code evolves.

The batched path is byte-identical to the seed path by construction — the
benchmark asserts ``np.array_equal`` between the two before timing anything.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.channel.awgn import awgn_noise
from repro.experiments.scales import get_scale
from repro.link.system import HspaLikeLink, PacketGroup
from repro.utils.rng import as_rng, child_rngs

#: Repository-root benchmark snapshot shared with the decoder benchmarks.
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_decoder.json"

#: Batch sizes reported by the front-end benchmark; 32 is the aggregated
#: decode batch (``DEFAULT_AGGREGATE_PACKETS``) the speedup target is set at.
FRONT_END_BATCH_SIZES = (1, 8, 32)

#: Timed front-end passes per batch size (best-of groups, like the decoder
#: benchmark; each pass uses a fresh seed so the MMSE design cache cannot
#: serve repeats of the same channel realisations).
FRONT_END_REPEATS = 5

#: The gate the CI perf assertion uses: batched packets/s over seed
#: packets/s at batch 32.
FRONT_END_TARGET_SPEEDUP = 4.0


# --------------------------------------------------------------------------- #
# Seed (pre-batching) serial front end, preserved as the fixed baseline.
# --------------------------------------------------------------------------- #
class _SeedMmseEqualizer:
    """The pre-batching per-call MMSE design + equalize (no filter cache)."""

    def __init__(self, num_taps: int, decision_delay: Optional[int] = None) -> None:
        self.num_taps = num_taps
        self.decision_delay = decision_delay

    def design(self, impulse_response, noise_variance, signal_power=1.0):
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        channel_length = h.size
        nf = self.num_taps
        num_symbols = nf + channel_length - 1
        conv_matrix = np.zeros((nf, num_symbols), dtype=np.complex128)
        for i in range(nf):
            conv_matrix[i, i : i + channel_length] = h[::-1]
        delay = (
            self.decision_delay
            if self.decision_delay is not None
            else (num_symbols - 1) // 2
        )
        es = float(signal_power)
        covariance = es * (conv_matrix @ conv_matrix.conj().T) + noise_variance * np.eye(nf)
        desired = es * conv_matrix[:, delay]
        taps = np.linalg.solve(covariance, desired)
        response = taps.conj() @ conv_matrix
        bias = response[delay]
        interference = es * (np.sum(np.abs(response) ** 2) - np.abs(bias) ** 2)
        noise_out = noise_variance * float(np.sum(np.abs(taps) ** 2))
        return taps, delay, complex(bias), float(interference + noise_out)

    def equalize(self, received, impulse_response, noise_variance, num_symbols):
        r = np.asarray(received, dtype=np.complex128).reshape(-1)
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        taps, delay, bias, residual_variance = self.design(
            impulse_response, noise_variance
        )
        filtered = np.convolve(r, np.conj(taps)[::-1])
        offset = self.num_taps + h.size - 2 - delay
        indices = np.arange(num_symbols) + offset
        raw = filtered[indices]
        bias_abs2 = np.abs(bias) ** 2
        if bias_abs2 < 1e-30:
            return np.zeros(num_symbols, dtype=np.complex128), 1e30
        return raw / bias, residual_variance / bias_abs2


def _seed_channel_apply(channel, signal, snr_db, generator):
    """The pre-batching serial ``MultipathChannel.apply`` body."""
    impulse_response = channel.realize(generator)
    convolved = np.convolve(signal, impulse_response)
    signal_power = float(np.mean(np.abs(signal) ** 2)) * float(
        np.sum(np.abs(impulse_response) ** 2)
    )
    noise_variance = signal_power / (10.0 ** (snr_db / 10.0))
    received = convolved + awgn_noise(convolved.shape, noise_variance, generator)
    return received, impulse_response, noise_variance


def _prepare_inputs(link: HspaLikeLink, num_packets: int, snr_db: float, rng_seed):
    """Payloads, buffers and post-payload generators shared by both passes.

    Same stream derivation as :meth:`HspaLikeLink._start_group` (child rngs,
    then payloads, then buffers), so each pass consumes every packet's
    generator from exactly the state the live link would.  Buffer
    construction (pure allocation, identical in both implementations) stays
    outside the timed region; encoding is part of the front end and is
    timed.
    """
    packet_rngs = child_rngs(rng_seed, num_packets)
    payloads = [link.transmitter.random_payload(r) for r in packet_rngs]
    buffers = [link.make_buffer() for _ in range(num_packets)]
    return packet_rngs, payloads, buffers


def _seed_front_end_pass(link: HspaLikeLink, inputs, snr_db: float):
    """One HARQ transmission through the seed serial front end, per packet.

    Mirrors the pre-batching serial chain (block-fading mode) for the first
    transmission of every packet: encode, transmit, channel, MMSE equalize,
    demap, store into the HARQ buffer and read back the combined
    mother-domain LLRs.
    """
    packet_rngs, payloads, buffers = inputs
    config = link.config
    seed_equalizer = _SeedMmseEqualizer(num_taps=config.equalizer_taps)
    receiver = link.receiver
    spreader = receiver.spreader
    num_samples = config.symbols_per_transmission
    if spreader is not None:
        num_samples *= spreader.spreading_factor
    redundancy_version = config.combining.redundancy_version(0)
    rows = []
    for packet_rng, payload, soft_buffer in zip(packet_rngs, payloads, buffers):
        packet = link.transmitter.encode(payload)
        samples = link.transmitter.transmit(packet, redundancy_version)
        received, impulse_response, noise_variance = _seed_channel_apply(
            link.channel, samples, snr_db, as_rng(packet_rng)
        )
        symbols, effective_noise = seed_equalizer.equalize(
            received, impulse_response, noise_variance, num_samples
        )
        if spreader is not None:
            symbols = spreader.despread(symbols)
            effective_noise = effective_noise / spreader.spreading_factor
        channel_llrs = receiver.demap(symbols, effective_noise)
        if config.buffer_architecture == "per-transmission":
            soft_buffer.store_transmission(0, channel_llrs, redundancy_version)
            combined = soft_buffer.combined_mother_llrs(receiver.to_mother_domain)
        else:
            mother = receiver.to_mother_domain(channel_llrs, redundancy_version)
            combined = soft_buffer.combine_and_store(mother)
        dtype = config.llr_numpy_dtype
        if combined.dtype != dtype:
            combined = combined.astype(dtype)
        rows.append(combined)
    return np.stack(rows)


def _batched_front_end_pass(link: HspaLikeLink, inputs, snr_db: float):
    """One HARQ transmission through the live batched front end."""
    from repro.link.system import _PacketState

    packet_rngs, payloads, buffers = inputs
    packets = link.transmitter.encode_batch(payloads)
    states = [
        _PacketState(
            rng=packet_rng, packet=packet, buffer=soft_buffer, snr_db=float(snr_db)
        )
        for packet_rng, packet, soft_buffer in zip(packet_rngs, packets, buffers)
    ]
    redundancy_version = link.config.combining.redundancy_version(0)
    return link._front_end_round(states, 0, redundancy_version)


# --------------------------------------------------------------------------- #
def run_front_end_benchmark(
    scale: str = "smoke",
    snr_db: float = 14.0,
    batch_sizes=FRONT_END_BATCH_SIZES,
    repeats: int = FRONT_END_REPEATS,
    base_seed: int = 2012,
) -> Dict:
    """Measure seed-serial vs batched front-end packets/s per batch size.

    Each timed pass runs one HARQ transmission's front end (transmit,
    channel, equalize, demap, HARQ store + combined read) for a prepared
    packet set; packet encoding and buffer construction happen outside the
    timer since both paths share them unchanged.  Seeds vary per repeat so
    the MMSE design cache sees new channel realisations every pass, like a
    real Monte-Carlo run.  The first pass of every batch size also asserts
    the two paths produce byte-identical LLR matrices.
    """
    link_scale = get_scale(scale)
    config = link_scale.link_config()
    section: Dict = {
        "scale": link_scale.name,
        "snr_db": float(snr_db),
        "batch_sizes": [int(b) for b in batch_sizes],
        "packets_per_second": {"seed": {}, "batched": {}},
        "speedup_vs_seed": {},
    }
    for batch in batch_sizes:
        link = HspaLikeLink(config)
        reference = _seed_front_end_pass(
            link, _prepare_inputs(link, batch, snr_db, base_seed), snr_db
        )
        candidate = _batched_front_end_pass(
            link, _prepare_inputs(link, batch, snr_db, base_seed), snr_db
        )
        if not np.array_equal(reference, candidate):
            raise AssertionError(
                f"batched front end diverged from the seed path at batch {batch}"
            )
        timings = {}
        for name, pass_fn in (
            ("seed", _seed_front_end_pass),
            ("batched", _batched_front_end_pass),
        ):
            best = float("inf")
            for group in range(3):
                fresh = HspaLikeLink(config)
                prepared = [
                    _prepare_inputs(
                        fresh, batch, snr_db, base_seed + 1 + group * repeats + repeat
                    )
                    for repeat in range(repeats)
                ]
                start = time.perf_counter()
                for inputs in prepared:
                    pass_fn(fresh, inputs, snr_db)
                best = min(best, (time.perf_counter() - start) / repeats)
            timings[name] = batch / best
        section["packets_per_second"]["seed"][str(batch)] = timings["seed"]
        section["packets_per_second"]["batched"][str(batch)] = timings["batched"]
        section["speedup_vs_seed"][str(batch)] = timings["batched"] / timings["seed"]
    section["target_speedup_at_32"] = FRONT_END_TARGET_SPEEDUP
    return section


# --------------------------------------------------------------------------- #
def run_bler_characterisation(base_seed: int = 2012) -> Dict:
    """Paired float64-vs-float32 LLR sweeps; reports ``max |ΔBLER|`` per scale.

    Runs the standard SNR sweep of the smoke and default scales twice with
    identical seeds — once with ``llr_dtype="float64"`` and once with
    ``"float32"`` — and records the largest absolute BLER difference across
    the SNR grid.  This is the evidence behind the scale-dependent
    ``llr_dtype`` default (float32 everywhere except the byte-pinned smoke
    scale).
    """
    characterisation: Dict = {"seed": int(base_seed), "scales": {}}
    for scale_name in ("smoke", "default"):
        scale = get_scale(scale_name)
        blers = {}
        for dtype in ("float64", "float32"):
            link = HspaLikeLink(scale.link_config(llr_dtype=dtype))
            results = link.snr_sweep(
                scale.snr_points_db, scale.num_packets, rng=base_seed
            )
            blers[dtype] = [r.statistics.block_error_rate for r in results]
        deltas = [abs(a - b) for a, b in zip(blers["float64"], blers["float32"])]
        characterisation["scales"][scale_name] = {
            "snr_points_db": [float(s) for s in scale.snr_points_db],
            "num_packets": scale.num_packets,
            "bler_float64": blers["float64"],
            "bler_float32": blers["float32"],
            "max_abs_delta_bler": max(deltas),
        }
    return characterisation


# --------------------------------------------------------------------------- #
def merge_bench_section(key: str, section: Dict, path: Path = BENCH_PATH) -> Dict:
    """Read-modify-write one section of ``BENCH_decoder.json``.

    The file is shared with the decoder benchmarks; each producer owns its
    own top-level key and never clobbers the others.
    """
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload[key] = section
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def run_and_record_front_end(
    scale: str = "smoke",
    *,
    with_bler: bool = False,
    path: Path = BENCH_PATH,
    log=print,
) -> Dict:
    """Run the front-end benchmark (optionally + BLER study) and merge results."""
    section = run_front_end_benchmark(scale=scale)
    if with_bler:
        section["float32_bler_characterisation"] = run_bler_characterisation()
    merge_bench_section("front_end", section, path=path)
    for batch in section["batch_sizes"]:
        seed_pps = section["packets_per_second"]["seed"][str(batch)]
        batched_pps = section["packets_per_second"]["batched"][str(batch)]
        speedup = section["speedup_vs_seed"][str(batch)]
        log(
            f"front end batch={batch:3d}: seed {seed_pps:8.1f} pkt/s, "
            f"batched {batched_pps:8.1f} pkt/s ({speedup:.2f}x)"
        )
    if with_bler:
        for name, entry in section["float32_bler_characterisation"]["scales"].items():
            log(
                f"float32 LLR max |dBLER| at {name} scale: "
                f"{entry['max_abs_delta_bler']:.4f}"
            )
    return section
