"""Link/decoder benchmarks and the float32-LLR BLER characterisation.

``BENCH_decoder.json`` at the repository root records the performance
snapshot of the *whole* pipeline: the turbo-decoder kernels (written by
``benchmarks/test_decoder_throughput.py``), the end-to-end llr-dtype link
benchmark, and — from this module — the ``front_end`` section comparing the
batched transmit/channel/equalize/demap path against a verbatim copy of the
pre-batching serial front end, plus the ``decoder_backends`` section
sweeping every available decoder family × batch size × thread count
(``repro bench decoder``) with a BLER-parity check for the max-log
families.

The seed implementations below are faithful copies of the serial code as it
stood before the front end grew its ``(num_packets, ...)`` batch axis: a
per-packet MMSE design with no filter cache, a per-packet channel pass and a
per-packet demap.  They are kept here (like ``_SeedTurboDecoder`` in the
benchmark suite) as the fixed baseline so the reported speedup keeps meaning
the same thing as the live code evolves.

The batched path is byte-identical to the seed path by construction — the
benchmark asserts ``np.array_equal`` between the two before timing anything.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.channel.awgn import awgn_noise
from repro.experiments.scales import get_scale
from repro.link.system import HspaLikeLink, PacketGroup
from repro.utils.rng import as_rng, child_rngs

#: Repository-root benchmark snapshot shared with the decoder benchmarks.
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_decoder.json"

#: Batch sizes reported by the front-end benchmark; 32 is the aggregated
#: decode batch (``DEFAULT_AGGREGATE_PACKETS``) the speedup target is set at.
FRONT_END_BATCH_SIZES = (1, 8, 32)

#: Timed front-end passes per batch size (best-of groups, like the decoder
#: benchmark; each pass uses a fresh seed so the MMSE design cache cannot
#: serve repeats of the same channel realisations).
FRONT_END_REPEATS = 5

#: The gate the CI perf assertion uses: batched packets/s over seed
#: packets/s at batch 32.
FRONT_END_TARGET_SPEEDUP = 4.0


# --------------------------------------------------------------------------- #
# Seed (pre-batching) serial front end, preserved as the fixed baseline.
# --------------------------------------------------------------------------- #
class _SeedMmseEqualizer:
    """The pre-batching per-call MMSE design + equalize (no filter cache)."""

    def __init__(self, num_taps: int, decision_delay: Optional[int] = None) -> None:
        self.num_taps = num_taps
        self.decision_delay = decision_delay

    def design(self, impulse_response, noise_variance, signal_power=1.0):
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        channel_length = h.size
        nf = self.num_taps
        num_symbols = nf + channel_length - 1
        conv_matrix = np.zeros((nf, num_symbols), dtype=np.complex128)
        for i in range(nf):
            conv_matrix[i, i : i + channel_length] = h[::-1]
        delay = (
            self.decision_delay
            if self.decision_delay is not None
            else (num_symbols - 1) // 2
        )
        es = float(signal_power)
        covariance = es * (conv_matrix @ conv_matrix.conj().T) + noise_variance * np.eye(nf)
        desired = es * conv_matrix[:, delay]
        taps = np.linalg.solve(covariance, desired)
        response = taps.conj() @ conv_matrix
        bias = response[delay]
        interference = es * (np.sum(np.abs(response) ** 2) - np.abs(bias) ** 2)
        noise_out = noise_variance * float(np.sum(np.abs(taps) ** 2))
        return taps, delay, complex(bias), float(interference + noise_out)

    def equalize(self, received, impulse_response, noise_variance, num_symbols):
        r = np.asarray(received, dtype=np.complex128).reshape(-1)
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        taps, delay, bias, residual_variance = self.design(
            impulse_response, noise_variance
        )
        filtered = np.convolve(r, np.conj(taps)[::-1])
        offset = self.num_taps + h.size - 2 - delay
        indices = np.arange(num_symbols) + offset
        raw = filtered[indices]
        bias_abs2 = np.abs(bias) ** 2
        if bias_abs2 < 1e-30:
            return np.zeros(num_symbols, dtype=np.complex128), 1e30
        return raw / bias, residual_variance / bias_abs2


def _seed_channel_apply(channel, signal, snr_db, generator):
    """The pre-batching serial ``MultipathChannel.apply`` body."""
    impulse_response = channel.realize(generator)
    convolved = np.convolve(signal, impulse_response)
    signal_power = float(np.mean(np.abs(signal) ** 2)) * float(
        np.sum(np.abs(impulse_response) ** 2)
    )
    noise_variance = signal_power / (10.0 ** (snr_db / 10.0))
    received = convolved + awgn_noise(convolved.shape, noise_variance, generator)
    return received, impulse_response, noise_variance


def _prepare_inputs(link: HspaLikeLink, num_packets: int, snr_db: float, rng_seed):
    """Payloads, buffers and post-payload generators shared by both passes.

    Same stream derivation as :meth:`HspaLikeLink._start_group` (child rngs,
    then payloads, then buffers), so each pass consumes every packet's
    generator from exactly the state the live link would.  Buffer
    construction (pure allocation, identical in both implementations) stays
    outside the timed region; encoding is part of the front end and is
    timed.
    """
    packet_rngs = child_rngs(rng_seed, num_packets)
    payloads = [link.transmitter.random_payload(r) for r in packet_rngs]
    buffers = [link.make_buffer() for _ in range(num_packets)]
    return packet_rngs, payloads, buffers


def _seed_front_end_pass(link: HspaLikeLink, inputs, snr_db: float):
    """One HARQ transmission through the seed serial front end, per packet.

    Mirrors the pre-batching serial chain (block-fading mode) for the first
    transmission of every packet: encode, transmit, channel, MMSE equalize,
    demap, store into the HARQ buffer and read back the combined
    mother-domain LLRs.
    """
    packet_rngs, payloads, buffers = inputs
    config = link.config
    seed_equalizer = _SeedMmseEqualizer(num_taps=config.equalizer_taps)
    receiver = link.receiver
    spreader = receiver.spreader
    num_samples = config.symbols_per_transmission
    if spreader is not None:
        num_samples *= spreader.spreading_factor
    redundancy_version = config.combining.redundancy_version(0)
    rows = []
    for packet_rng, payload, soft_buffer in zip(packet_rngs, payloads, buffers):
        packet = link.transmitter.encode(payload)
        samples = link.transmitter.transmit(packet, redundancy_version)
        received, impulse_response, noise_variance = _seed_channel_apply(
            link.channel, samples, snr_db, as_rng(packet_rng)
        )
        symbols, effective_noise = seed_equalizer.equalize(
            received, impulse_response, noise_variance, num_samples
        )
        if spreader is not None:
            symbols = spreader.despread(symbols)
            effective_noise = effective_noise / spreader.spreading_factor
        channel_llrs = receiver.demap(symbols, effective_noise)
        if config.buffer_architecture == "per-transmission":
            soft_buffer.store_transmission(0, channel_llrs, redundancy_version)
            combined = soft_buffer.combined_mother_llrs(receiver.to_mother_domain)
        else:
            mother = receiver.to_mother_domain(channel_llrs, redundancy_version)
            combined = soft_buffer.combine_and_store(mother)
        dtype = config.llr_numpy_dtype
        if combined.dtype != dtype:
            combined = combined.astype(dtype)
        rows.append(combined)
    return np.stack(rows)


def _batched_front_end_pass(link: HspaLikeLink, inputs, snr_db: float):
    """One HARQ transmission through the live batched front end."""
    from repro.link.system import _PacketState

    packet_rngs, payloads, buffers = inputs
    packets = link.transmitter.encode_batch(payloads)
    states = [
        _PacketState(
            rng=packet_rng, packet=packet, buffer=soft_buffer, snr_db=float(snr_db)
        )
        for packet_rng, packet, soft_buffer in zip(packet_rngs, packets, buffers)
    ]
    redundancy_version = link.config.combining.redundancy_version(0)
    return link._front_end_round(states, 0, redundancy_version)


# --------------------------------------------------------------------------- #
def run_front_end_benchmark(
    scale: str = "smoke",
    snr_db: float = 14.0,
    batch_sizes=FRONT_END_BATCH_SIZES,
    repeats: int = FRONT_END_REPEATS,
    base_seed: int = 2012,
) -> Dict:
    """Measure seed-serial vs batched front-end packets/s per batch size.

    Each timed pass runs one HARQ transmission's front end (transmit,
    channel, equalize, demap, HARQ store + combined read) for a prepared
    packet set; packet encoding and buffer construction happen outside the
    timer since both paths share them unchanged.  Seeds vary per repeat so
    the MMSE design cache sees new channel realisations every pass, like a
    real Monte-Carlo run.  The first pass of every batch size also asserts
    the two paths produce byte-identical LLR matrices.
    """
    link_scale = get_scale(scale)
    config = link_scale.link_config()
    section: Dict = {
        "scale": link_scale.name,
        "snr_db": float(snr_db),
        "batch_sizes": [int(b) for b in batch_sizes],
        "packets_per_second": {"seed": {}, "batched": {}},
        "speedup_vs_seed": {},
    }
    for batch in batch_sizes:
        link = HspaLikeLink(config)
        reference = _seed_front_end_pass(
            link, _prepare_inputs(link, batch, snr_db, base_seed), snr_db
        )
        candidate = _batched_front_end_pass(
            link, _prepare_inputs(link, batch, snr_db, base_seed), snr_db
        )
        if not np.array_equal(reference, candidate):
            raise AssertionError(
                f"batched front end diverged from the seed path at batch {batch}"
            )
        timings = {}
        for name, pass_fn in (
            ("seed", _seed_front_end_pass),
            ("batched", _batched_front_end_pass),
        ):
            best = float("inf")
            for group in range(3):
                fresh = HspaLikeLink(config)
                prepared = [
                    _prepare_inputs(
                        fresh, batch, snr_db, base_seed + 1 + group * repeats + repeat
                    )
                    for repeat in range(repeats)
                ]
                start = time.perf_counter()
                for inputs in prepared:
                    pass_fn(fresh, inputs, snr_db)
                best = min(best, (time.perf_counter() - start) / repeats)
            timings[name] = batch / best
        section["packets_per_second"]["seed"][str(batch)] = timings["seed"]
        section["packets_per_second"]["batched"][str(batch)] = timings["batched"]
        section["speedup_vs_seed"][str(batch)] = timings["batched"] / timings["seed"]
    section["target_speedup_at_32"] = FRONT_END_TARGET_SPEEDUP
    return section


# --------------------------------------------------------------------------- #
# Decoder-backend sweep: families × batch sizes × thread counts.
# --------------------------------------------------------------------------- #
#: Batch sizes of the decoder-backend sweep (mirrors the decoder benchmark).
DECODER_SWEEP_BATCH_SIZES = (8, 32, 128)

#: Thread counts swept for families that honour ``num_threads``.
DECODER_SWEEP_THREADS = (1, 2, 4)

#: Timed decode calls per (family, batch) point.
DECODER_SWEEP_REPEATS = 8

#: Max-log families must keep ``max |ΔBLER|`` within this bound on the
#: paired seeded sweep (the same gate style as the float32-LLR study).
DECODER_BLER_TOLERANCE = 0.05

#: Packets per SNR point of the BLER-parity sweep (64 gives a BLER
#: granularity of 1/64, fine enough to detect a systematic divergence).
DECODER_BLER_PACKETS = 64


def _decoder_workload(scale_name: str, batch_sizes, base_seed: int):
    """Seeded mixed-noise decode batches, like a sweep's decode calls."""
    from repro.phy.turbo import TurboCode

    scale = get_scale(scale_name)
    config = scale.link_config()
    k = config.block_size
    code = TurboCode(k, num_iterations=scale.turbo_iterations)
    rng = np.random.default_rng(base_seed)
    sigmas = (0.8, 1.5, 2.2, 3.0)
    batches = {}
    for batch in batch_sizes:
        rows = []
        for i in range(batch):
            bits = rng.integers(0, 2, k, dtype=np.int8)
            coded = code.encode(bits)
            noise = rng.normal(0.0, sigmas[i % len(sigmas)], coded.size)
            rows.append((1.0 - 2.0 * coded.astype(np.float64)) * 2.0 + noise)
        llrs = np.stack(rows)
        batches[batch] = (
            llrs[:, :k],
            np.ascontiguousarray(llrs[:, k::2]),
            np.ascontiguousarray(llrs[:, k + 1 :: 2]),
        )
    return scale, code, batches


def _decode_throughput(decoder, inputs, block_size: int, batch: int, repeats: int) -> float:
    """Best-of-groups info-bits/s of one decoder on one prepared batch."""
    decoder.decode(*inputs)  # warm-up (workspace growth, thread-pool spin-up)
    best = float("inf")
    for _group in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            decoder.decode(*inputs)
        best = min(best, (time.perf_counter() - start) / repeats)
    return batch * block_size / best


def run_decoder_backend_sweep(
    scale: str = "smoke",
    batch_sizes=DECODER_SWEEP_BATCH_SIZES,
    thread_counts=DECODER_SWEEP_THREADS,
    repeats: int = DECODER_SWEEP_REPEATS,
    base_seed: int = 2012,
    with_bler_parity: bool = True,
) -> Dict:
    """Sweep every available decoder family × batch × threads.

    Measures information bits decoded per second for both dtypes of every
    *available* family on the same seeded mixed-noise workload, a thread
    sweep for the families that honour ``num_threads`` (recorded together
    with the machine's CPU count — thread scaling is meaningless without
    it), and, for the fastest non-exact family, a paired seeded BLER sweep
    against the numpy reference with a tolerance verdict.
    """
    import os

    from repro.phy.turbo import TurboDecoder
    from repro.phy.turbo.backends import (
        available_backends,
        backend_is_exact,
        family_listing,
    )

    link_scale, code, batches = _decoder_workload(scale, batch_sizes, base_seed)
    k = code.block_size
    iterations = link_scale.turbo_iterations
    tokens = list(available_backends())
    section: Dict = {
        "scale": link_scale.name,
        "block_size": k,
        "num_iterations": iterations,
        "cpu_count": os.cpu_count(),
        "batch_sizes": [int(b) for b in batch_sizes],
        "available_backends": tokens,
        "info_bits_per_second": {},
        "speedup_vs_numpy_f32": {},
    }
    for token in tokens:
        per_batch = {}
        for batch, inputs in batches.items():
            decoder = TurboDecoder(
                k, iterations, interleaver=code.encoder.interleaver, backend=token
            )
            per_batch[str(batch)] = _decode_throughput(decoder, inputs, k, batch, repeats)
        section["info_bits_per_second"][token] = per_batch
    reference = section["info_bits_per_second"].get("numpy-f32", {})
    for token in tokens:
        if token == "numpy-f32":
            continue
        section["speedup_vs_numpy_f32"][token] = {
            batch: value / reference[batch]
            for batch, value in section["info_bits_per_second"][token].items()
            if reference.get(batch)
        }

    # Thread sweep on the widest batch for every threaded family.
    threaded = [
        entry["family"]
        for entry in family_listing()
        if entry["threaded"] and entry["available"]
    ]
    section["thread_scaling"] = {}
    widest = max(batches)
    for family in threaded:
        token = f"{family}-f32"
        per_thread = {}
        for threads in thread_counts:
            decoder = TurboDecoder(
                k,
                iterations,
                interleaver=code.encoder.interleaver,
                backend=f"{token}@t{threads}" if threads > 1 else token,
            )
            per_thread[str(threads)] = _decode_throughput(
                decoder, batches[widest], k, widest, repeats
            )
        section["thread_scaling"][token] = {
            "batch": int(widest),
            "info_bits_per_second": per_thread,
        }

    # BLER parity of the fastest available max-log family vs the reference.
    candidates = [t for t in tokens if not backend_is_exact(t) and t.endswith("-f32")]
    if with_bler_parity and candidates:
        candidate = candidates[0]
        section["bler_parity"] = run_decoder_bler_parity(
            candidate, scale=scale, base_seed=base_seed
        )
    return section


def run_decoder_bler_parity(
    candidate: str,
    scale: str = "smoke",
    base_seed: int = 2012,
    num_packets: int = DECODER_BLER_PACKETS,
    tolerance: float = DECODER_BLER_TOLERANCE,
) -> Dict:
    """Paired seeded SNR sweep: *candidate* backend vs the numpy reference.

    Both sweeps consume identical seed streams, so every packet sees the
    same payload, channel and noise; the only difference is the decoder
    kernel.  Exact families would produce ``ΔBLER == 0``; max-log families
    are held to ``max |ΔBLER| <= tolerance`` — the same contract the
    float32-LLR mode was characterised under.
    """
    link_scale = get_scale(scale)
    blers = {}
    for backend in ("numpy", candidate):
        link = HspaLikeLink(link_scale.link_config(decoder_backend=backend))
        results = link.snr_sweep(
            link_scale.snr_points_db, num_packets, rng=base_seed
        )
        blers[backend] = [r.statistics.block_error_rate for r in results]
    deltas = [abs(a - b) for a, b in zip(blers["numpy"], blers[candidate])]
    return {
        "reference": "numpy",
        "candidate": candidate,
        "snr_points_db": [float(s) for s in link_scale.snr_points_db],
        "num_packets": int(num_packets),
        "seed": int(base_seed),
        "bler_reference": blers["numpy"],
        "bler_candidate": blers[candidate],
        "max_abs_delta_bler": max(deltas),
        "tolerance": float(tolerance),
        "within_tolerance": max(deltas) <= tolerance,
    }


def run_and_record_decoder_backends(
    scale: str = "smoke",
    *,
    path: Path = BENCH_PATH,
    log=print,
) -> Dict:
    """Run the decoder-backend sweep and merge it into the bench snapshot."""
    section = run_decoder_backend_sweep(scale=scale)
    merge_bench_section("decoder_backends", section, path=path)
    for token, per_batch in section["info_bits_per_second"].items():
        for batch, value in sorted(per_batch.items(), key=lambda kv: int(kv[0])):
            ratio = section["speedup_vs_numpy_f32"].get(token, {}).get(batch)
            suffix = f" ({ratio:.2f}x numpy-f32)" if ratio is not None else ""
            log(f"{token:12s} batch={int(batch):4d}: {value:12.0f} info bits/s{suffix}")
    for token, entry in section["thread_scaling"].items():
        pairs = ", ".join(
            f"t{threads}={value:.0f}"
            for threads, value in sorted(
                entry["info_bits_per_second"].items(), key=lambda kv: int(kv[0])
            )
        )
        log(
            f"{token} thread sweep at batch {entry['batch']} "
            f"(cpu_count={section['cpu_count']}): {pairs}"
        )
    parity = section.get("bler_parity")
    if parity is not None:
        verdict = "within" if parity["within_tolerance"] else "EXCEEDS"
        log(
            f"BLER parity {parity['candidate']} vs {parity['reference']}: "
            f"max |dBLER| = {parity['max_abs_delta_bler']:.4f} "
            f"({verdict} tolerance {parity['tolerance']})"
        )
    return section


# --------------------------------------------------------------------------- #
def run_bler_characterisation(base_seed: int = 2012) -> Dict:
    """Paired float64-vs-float32 LLR sweeps; reports ``max |ΔBLER|`` per scale.

    Runs the standard SNR sweep of the smoke and default scales twice with
    identical seeds — once with ``llr_dtype="float64"`` and once with
    ``"float32"`` — and records the largest absolute BLER difference across
    the SNR grid.  This is the evidence behind the scale-dependent
    ``llr_dtype`` default (float32 everywhere except the byte-pinned smoke
    scale).
    """
    characterisation: Dict = {"seed": int(base_seed), "scales": {}}
    for scale_name in ("smoke", "default"):
        scale = get_scale(scale_name)
        blers = {}
        for dtype in ("float64", "float32"):
            link = HspaLikeLink(scale.link_config(llr_dtype=dtype))
            results = link.snr_sweep(
                scale.snr_points_db, scale.num_packets, rng=base_seed
            )
            blers[dtype] = [r.statistics.block_error_rate for r in results]
        deltas = [abs(a - b) for a, b in zip(blers["float64"], blers["float32"])]
        characterisation["scales"][scale_name] = {
            "snr_points_db": [float(s) for s in scale.snr_points_db],
            "num_packets": scale.num_packets,
            "bler_float64": blers["float64"],
            "bler_float32": blers["float32"],
            "max_abs_delta_bler": max(deltas),
        }
    return characterisation


# --------------------------------------------------------------------------- #
def merge_bench_section(key: str, section: Dict, path: Path = BENCH_PATH) -> Dict:
    """Read-modify-write one section of ``BENCH_decoder.json``.

    The file is shared with the decoder benchmarks; each producer owns its
    own top-level key and never clobbers the others.
    """
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload[key] = section
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def run_and_record_front_end(
    scale: str = "smoke",
    *,
    with_bler: bool = False,
    path: Path = BENCH_PATH,
    log=print,
) -> Dict:
    """Run the front-end benchmark (optionally + BLER study) and merge results."""
    section = run_front_end_benchmark(scale=scale)
    if with_bler:
        section["float32_bler_characterisation"] = run_bler_characterisation()
    merge_bench_section("front_end", section, path=path)
    for batch in section["batch_sizes"]:
        seed_pps = section["packets_per_second"]["seed"][str(batch)]
        batched_pps = section["packets_per_second"]["batched"][str(batch)]
        speedup = section["speedup_vs_seed"][str(batch)]
        log(
            f"front end batch={batch:3d}: seed {seed_pps:8.1f} pkt/s, "
            f"batched {batched_pps:8.1f} pkt/s ({speedup:.2f}x)"
        )
    if with_bler:
        for name, entry in section["float32_bler_characterisation"]["scales"].items():
            log(
                f"float32 LLR max |dBLER| at {name} scale: "
                f"{entry['max_abs_delta_bler']:.4f}"
            )
    return section
