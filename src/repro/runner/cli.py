"""``python -m repro`` — the unified experiment command line.

Subcommands
-----------

``run <experiment>``
    Run one registered experiment (``--scale``, ``--seed``, ``--workers``,
    ``--execution-backend``), consult / fill the on-disk result cache, and
    emit the result as canonical JSON (``--out``) or markdown (default).
``run scenario <name>``
    Run one registered scenario (see :mod:`repro.scenarios`), optionally
    overriding its axes or fields with ``--set field=v1,v2``.  A figure
    scenario with no overrides resolves to the figure's own run identity and
    is byte-identical to its golden snapshot; any override keys a distinct
    cache identity (scenario name + resolved non-default fields).
``list``
    Show registered experiments, scale presets and execution backends.
``scenarios ls [--json]``
    List the scenario registry (human-readable, or machine-readable JSON).
``backends ls [--json]``
    List all three registries — decoder-backend families (with availability
    probes and reasons), execution backends and scenarios — for this machine.
``bler``
    Adaptively estimate the defect-free link BLER at one SNR point, stopping
    once the Wilson interval meets the requested relative error.
``worker``
    Run a distributed-execution worker daemon that connects to a
    ``--execution-backend socket`` coordinator and serves work items.
``golden``
    (Re)generate the golden-seed regression snapshots under ``tests/golden``.
``cache``
    Inspect (``ls``) or evict (``clear``) the result cache.
``serve``
    Expose a result cache (and optionally a shared point store) as a
    read-only JSON HTTP API — see :mod:`repro.runner.serve`.  ``GET
    /metrics`` on the server returns the process telemetry snapshot.
``metrics``
    Summarise a telemetry snapshot file written by ``--metrics-out``
    (``repro run`` / ``repro bler``): counters, gauges, histograms and the
    structured event log.  Telemetry is observability only — it never
    enters a run identity, a cached payload or a golden file.

The execution backend is pure topology — serial, process-pool and
socket-distributed runs of the same plan are byte-identical — so it is
never part of the run identity that keys the cache and the golden files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.scales import SCALES, get_scale
from repro.phy.turbo.backends import backend_names
from repro.runner import chaos
from repro.runner.backends import (
    DEFAULT_BACKEND,
    DEFAULT_PARALLEL_BACKEND,
    TASK_ERROR_POLICIES,
    create_execution_backend,
    execution_backend_names,
    run_worker,
)
from repro.runner.cache import (
    QuarantineStore,
    ResultCache,
    config_digest,
    decoder_backend_identity,
    serialize_payload,
)
from repro.runner.parallel import ParallelRunner
from repro.runner.registry import EXPERIMENTS, run_experiment
from repro.scenarios.engine import run_scenario
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.spec import (
    resolved_scenario_fields,
    resolve_link_config,
    scenario_listing,
)
from repro.runner.tasks import (
    LinkChunkTask,
    count_block_errors,
    count_block_errors_batched,
    resolve_adaptive,
)

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"
#: Seed used throughout the repository's reproducible artefacts.
DEFAULT_SEED = 2012
#: Experiments snapshotted by the golden-seed regression suite (all of them).
GOLDEN_EXPERIMENTS = tuple(EXPERIMENTS)
#: Non-figure scenarios snapshotted as ``tests/golden/scenario-<name>.json``
#: (the new-physics compositions: intra-packet fading, clustered fault maps,
#: transient soft errors).  Figure scenarios need no own snapshots — they are
#: byte-identical to their experiment's golden file by construction.
GOLDEN_SCENARIOS = (
    "jakes-doppler-sweep",
    "jakes-harq-gain",
    "clustered-vs-uniform",
    "soft-vs-hard-faults",
    "clustered-interleaver-depth",
)
#: Fault-map sweeps that support ``--adaptive`` early stopping.
ADAPTIVE_EXPERIMENTS = ("fig6", "fig7", "fig8", "fig9")


#: Default coordinator bind address of the socket backend (loopback,
#: ephemeral port); used to detect whether the user set the flag at all.
DEFAULT_SOCKET_BIND = "127.0.0.1:0"


def _decoder_backend_token(value: str) -> str:
    """argparse type for ``--decoder-backend`` (accepts ``@t<N>`` suffixes).

    A static ``choices=`` list cannot enumerate the open-ended thread tokens
    (``native-f32@t4``), so validation goes through the same parser the
    decoder itself uses and bad tokens still fail at argument-parse time.
    """
    from repro.phy.turbo.backends import parse_backend_name

    try:
        parse_backend_name(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags selecting where work items execute (never what they compute)."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: 1, or one per CPU when "
        "--execution-backend is given; 0 = one per CPU; never changes the "
        "results)",
    )
    parser.add_argument(
        "--execution-backend",
        default=None,
        choices=sorted(execution_backend_names()),
        help="execution backend (default: serial, or the local process pool "
        "when --workers > 1); pure topology, never part of the run identity",
    )
    parser.add_argument(
        "--socket-address",
        default=DEFAULT_SOCKET_BIND,
        help="socket backend: coordinator bind address HOST:PORT "
        "(port 0 = ephemeral; non-loopback hosts only on trusted networks)",
    )
    parser.add_argument(
        "--socket-workers",
        type=int,
        default=None,
        help="socket backend: local worker daemons to auto-spawn "
        "(default: --workers; 0 = wait for external `repro worker` daemons)",
    )
    parser.add_argument(
        "--socket-task-timeout",
        type=float,
        default=None,
        help="socket backend: per-task deadline in seconds — a work item "
        "unanswered this long marks its worker hung and is preemptively "
        "requeued to another worker (default: no deadline)",
    )
    parser.add_argument(
        "--socket-worker-slots",
        type=int,
        default=None,
        help="socket backend: concurrent work items per auto-spawned local "
        "daemon (default: 1; 0 = one per CPU of the daemon's machine); "
        "external daemons advertise their own --slots",
    )
    parser.add_argument(
        "--on-task-error",
        default=None,
        choices=sorted(TASK_ERROR_POLICIES),
        help="what a work item that *raises* does to the sweep: 'fail' "
        "(default) aborts with the traceback; 'quarantine' records the item "
        "under <cache-dir>/quarantine/ and completes the sweep without it "
        "(worker crashes are always retried silently — this flag is about "
        "poison tasks, not dead workers)",
    )
    parser.add_argument(
        "--task-attempts",
        type=int,
        default=None,
        metavar="K",
        help="socket backend: retry a raising work item on up to K distinct "
        "workers before applying --on-task-error (default: 1 — no retry; "
        "a deterministic raise fails everywhere, so retries only help "
        "machine-specific breakage)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for resilience testing, e.g. "
        "'drop-send=4;kill-task=2;tear-write=1' (see repro.runner.chaos; "
        "also honours the REPRO_CHAOS environment variable); results must "
        "stay byte-identical under any plan",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's experiments with deterministic parallel sharding.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment or scenario")
    run_p.add_argument(
        "experiment",
        choices=list(EXPERIMENTS) + ["scenario"],
        help="experiment name, or the literal 'scenario' followed by a scenario name",
    )
    run_p.add_argument(
        "name",
        nargs="?",
        default=None,
        help="scenario name (only with 'run scenario'; see `repro scenarios ls`)",
    )
    run_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=V1[,V2,...]",
        help="scenario override: replace an axis' values or a scalar field "
        "(only with 'run scenario'; repeatable)",
    )
    run_p.add_argument("--scale", default="smoke", choices=sorted(SCALES), help="scale preset")
    run_p.add_argument("--seed", type=int, default=DEFAULT_SEED, help="experiment seed")
    _add_execution_arguments(run_p)
    run_p.add_argument("--out", type=Path, default=None, help="write canonical JSON here")
    run_p.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSON telemetry snapshot (dispatches, cache hits, "
        "redeliveries, chaos injections, round timings) here when the run "
        "ends; observability only — never part of the run identity or the "
        "result payload (inspect with `repro metrics PATH`)",
    )
    run_p.add_argument("--cache-dir", type=Path, default=Path(DEFAULT_CACHE_DIR))
    run_p.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    run_p.add_argument(
        "--point-store",
        type=Path,
        default=None,
        metavar="DIR",
        help="shared content-addressed store of individual grid-point results: "
        "known points are loaded instead of recomputed, fresh ones stored for "
        "other coordinators; pure topology, never part of the run identity "
        "(keep the directory separate from --cache-dir)",
    )
    run_p.add_argument("--force", action="store_true", help="recompute even on a cache hit")
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from its journal under "
        "<cache-dir>/journal/ (same experiment/scale/seed/flags); completed "
        "grid points are replayed, the rest recomputed — output is "
        "byte-identical to an uninterrupted run",
    )
    run_p.add_argument(
        "--no-journal",
        action="store_true",
        help="skip the crash-safe sweep journal (journaling is on by default "
        "for simulated experiments; the journal is deleted on success)",
    )
    run_p.add_argument(
        "--decoder-backend",
        default=None,
        type=_decoder_backend_token,
        metavar="BACKEND",
        help="turbo-decoder backend, e.g. "
        f"{', '.join(sorted(backend_names()))}; threaded families accept an "
        "@t<N> suffix such as native-f32@t4 (default: the deterministic "
        "numpy kernel; see `repro backends ls`)",
    )
    run_p.add_argument(
        "--adaptive",
        action="store_true",
        help="stop confidently-resolved sweep points before the full packet budget "
        "(fault-map experiments only)",
    )

    sub.add_parser("list", help="list experiments and scale presets")

    scenarios_p = sub.add_parser("scenarios", help="list registered scenarios")
    scenarios_p.add_argument(
        "action", nargs="?", default="ls", choices=("ls",), help="ls: list scenarios"
    )
    scenarios_p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (one JSON array of scenario descriptions)",
    )

    backends_p = sub.add_parser(
        "backends",
        help="list the decoder, execution and scenario registries with "
        "availability on this machine",
    )
    backends_p.add_argument(
        "action", nargs="?", default="ls", choices=("ls",), help="ls: list backends"
    )
    backends_p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (one JSON object with decoder_backends, "
        "execution_backends and scenarios)",
    )

    bler_p = sub.add_parser("bler", help="adaptive BLER estimate at one SNR point")
    bler_p.add_argument("--snr", type=float, required=True, help="receive SNR in dB")
    bler_p.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    bler_p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_execution_arguments(bler_p)
    bler_p.add_argument("--relative-error", type=float, default=0.3)
    bler_p.add_argument("--confidence", type=float, default=0.95)
    bler_p.add_argument("--bler-floor", type=float, default=1e-2)
    bler_p.add_argument("--chunk-packets", type=int, default=8)
    bler_p.add_argument("--max-packets", type=int, default=None)
    bler_p.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSON telemetry snapshot here when the estimate ends "
        "(inspect with `repro metrics PATH`)",
    )

    golden_p = sub.add_parser("golden", help="regenerate golden regression snapshots")
    golden_p.add_argument(
        "--out-dir", type=Path, default=Path("tests/golden"), help="snapshot directory"
    )
    golden_p.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    golden_p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    golden_p.add_argument(
        "--experiments", nargs="*", default=None, help="subset to regenerate (default: all)"
    )

    bench_p = sub.add_parser(
        "bench", help="run a performance benchmark and update BENCH_decoder.json"
    )
    bench_p.add_argument(
        "target",
        choices=("front-end", "decoder"),
        help="benchmark to run (front-end: seed-serial vs batched link front "
        "end; decoder: backend-family throughput/thread/BLER-parity sweep)",
    )
    bench_p.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    bench_p.add_argument(
        "--no-bler",
        action="store_true",
        help="skip the float64-vs-float32 LLR BLER characterisation sweeps",
    )

    worker_p = sub.add_parser(
        "worker", help="serve work items for a socket-distributed coordinator"
    )
    worker_p.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="coordinator address"
    )
    worker_p.add_argument(
        "--connect-retries",
        type=int,
        default=40,
        help="connection attempts before giving up (the daemon may be "
        "started before the coordinator)",
    )
    worker_p.add_argument(
        "--retry-delay", type=float, default=0.5, help="seconds between attempts"
    )
    worker_p.add_argument(
        "--once",
        action="store_true",
        help="exit after the first connection ends instead of reconnecting",
    )
    worker_p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="seconds between liveness heartbeats (default: 2; 0 disables "
        "heartbeating and opts out of coordinator staleness enforcement)",
    )
    worker_p.add_argument(
        "--slots",
        type=int,
        default=1,
        help="concurrent work items this daemon advertises and executes "
        "(default: 1; 0 = one per CPU)",
    )

    cache_p = sub.add_parser("cache", help="inspect or evict the result cache")
    cache_p.add_argument(
        "action",
        nargs="?",
        default="ls",
        choices=("ls", "clear"),
        help="ls: list cached runs (default); clear: delete them",
    )
    cache_p.add_argument(
        "--experiment",
        default=None,
        help="restrict ls/clear to one experiment's entries",
    )
    cache_p.add_argument("--cache-dir", type=Path, default=Path(DEFAULT_CACHE_DIR))

    serve_p = sub.add_parser(
        "serve", help="serve cached results as a read-only JSON HTTP API"
    )
    serve_p.add_argument(
        "--cache",
        type=Path,
        default=Path(DEFAULT_CACHE_DIR),
        metavar="DIR",
        help="result cache directory to expose (default: %(default)s)",
    )
    serve_p.add_argument(
        "--point-store",
        type=Path,
        default=None,
        metavar="DIR",
        help="also expose this shared point store under /points",
    )
    serve_p.add_argument(
        "--bind",
        default="127.0.0.1:8000",
        metavar="HOST:PORT",
        help="listen address (default: %(default)s; port 0 = ephemeral; "
        "no authentication — bind non-loopback hosts only on trusted networks)",
    )

    metrics_p = sub.add_parser(
        "metrics", help="summarise a --metrics-out telemetry snapshot file"
    )
    metrics_p.add_argument(
        "snapshot", type=Path, help="snapshot file written by --metrics-out"
    )
    metrics_p.add_argument(
        "--json",
        action="store_true",
        help="re-emit the snapshot as canonical JSON instead of a summary",
    )

    return parser


def make_runner(args: argparse.Namespace) -> ParallelRunner:
    """Build the :class:`ParallelRunner` an execution-flag set asks for."""
    if getattr(args, "chaos", None):
        # Export so auto-spawned socket worker daemons inherit the plan;
        # each process fires its own copy of the directives.
        chaos.activate(args.chaos, export=True)
    name = args.execution_backend
    workers = args.workers
    if name is None:
        workers = 1 if workers is None else workers
        # workers == 0 means "one per CPU" and is therefore parallel.
        name = DEFAULT_BACKEND if workers == 1 else DEFAULT_PARALLEL_BACKEND
    elif workers is None:
        # Naming a backend means "actually use it": scale to one worker per
        # CPU instead of a degenerate single-worker pool (mirrors
        # repro.runner.parallel.resolve_runner).
        workers = 0
    if name != "socket" and (
        args.socket_address != DEFAULT_SOCKET_BIND
        or args.socket_workers is not None
        or args.socket_task_timeout is not None
        or args.socket_worker_slots is not None
    ):
        raise ValueError(
            "--socket-address/--socket-workers/--socket-task-timeout/"
            "--socket-worker-slots require --execution-backend socket"
        )
    if args.task_attempts is not None and name != "socket":
        raise ValueError(
            "--task-attempts requires --execution-backend socket (only the "
            "distributed backend can retry an item on a *different* machine)"
        )
    options: Dict[str, Any] = {}
    if args.on_task_error is not None:
        options["on_task_error"] = args.on_task_error
    if name == "socket":
        options.update(
            bind=args.socket_address,
            local_workers=args.socket_workers,
        )
        if args.socket_task_timeout is not None:
            options["task_timeout"] = args.socket_task_timeout
        if args.socket_worker_slots is not None:
            options["worker_slots"] = args.socket_worker_slots
        if args.task_attempts is not None:
            options["task_attempts"] = args.task_attempts
    backend = create_execution_backend(name, workers=workers, **options)
    if name == "socket" and args.socket_workers == 0:
        # External-worker mode: surface the bound address (the port may be
        # ephemeral) before the run blocks waiting for daemons.
        print(
            f"coordinator listening on {backend.address}; start workers with: "
            f"python -m repro worker --connect {backend.address}",
            file=sys.stderr,
        )
    quarantine_store = None
    if args.on_task_error == "quarantine" and getattr(args, "cache_dir", None) is not None:
        quarantine_store = QuarantineStore(Path(args.cache_dir) / "quarantine")
    return ParallelRunner(workers, backend=backend, quarantine_store=quarantine_store)


# --------------------------------------------------------------------------- #
def run_identity(experiment: str, scale_name: str, seed: int, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The mapping that keys the cache and annotates every artefact.

    Besides the scale *name*, the identity hashes the resolved scale
    parameters and the derived link configuration, so editing a preset (or a
    ``LinkConfig`` default) invalidates stale cache entries instead of
    silently serving pre-change results.  A requested decoder backend is
    replaced by the backend that will *actually* run — name and compute
    dtype (see :func:`repro.runner.cache.decoder_backend_identity`) — so
    results from different backends are never conflated, while a numba
    request that falls back to numpy shares the numpy entry.
    """
    scale = get_scale(scale_name)
    return {
        "experiment": experiment,
        "scale": scale_name,
        "scale_params": scale,
        "link_config": scale.link_config().describe(),
        "seed": int(seed),
        "kwargs": _normalise_identity_kwargs(kwargs),
    }


def _normalise_identity_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Resolve identity-relevant kwargs to what will actually run."""
    kwargs = dict(kwargs)
    if kwargs.get("decoder_backend") is not None:
        resolved_backend = decoder_backend_identity(kwargs["decoder_backend"])
        if resolved_backend == decoder_backend_identity("numpy"):
            # An explicit request for the default backend (or a numba request
            # that fell back to it) computes byte-identical results — share
            # the default cache entry instead of recomputing it.
            del kwargs["decoder_backend"]
        else:
            kwargs["decoder_backend"] = resolved_backend
    if "adaptive" in kwargs:
        # Hash the resolved stopping parameters, not the literal flag, so a
        # change to the AdaptiveStopping defaults invalidates stale entries.
        resolved_adaptive = resolve_adaptive(kwargs["adaptive"])
        if resolved_adaptive is None:
            del kwargs["adaptive"]
        else:
            kwargs["adaptive"] = resolved_adaptive
    return kwargs


def scenario_run_identity(
    spec, scale_name: str, seed: int, kwargs: Dict[str, Any]
) -> Dict[str, Any]:
    """The cache/artefact identity of an overridden (or non-figure) scenario run.

    Keys the cache by the scenario *name* plus every resolved non-default
    spec field (axes included, fully resolved against the scale) — so two
    scenarios, or two override sets, never share an entry — together with
    the resolved base link configuration, the scale parameters and the seed.
    Default-figure scenario runs never reach this path: they delegate to the
    figure experiment's own identity and therefore to its golden bytes.
    """
    scale = get_scale(scale_name)
    return {
        "experiment": f"scenario-{spec.name}",
        "scenario": spec.name,
        "scale": scale_name,
        "scale_params": scale,
        "link_config": resolve_link_config(spec, scale).describe(),
        "fields": resolved_scenario_fields(spec, scale),
        "seed": int(seed),
        "kwargs": _normalise_identity_kwargs(kwargs),
    }


def experiment_payload(
    experiment: str,
    scale_name: str,
    seed: int,
    *,
    workers: int = 1,
    runner: Optional[ParallelRunner] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    point_store: Any = None,
    journal_dir: Any = None,
    resume: bool = False,
    **kwargs: Any,
) -> str:
    """Run (or fetch) an experiment and return its canonical JSON payload.

    This is the programmatic core of ``repro run``: the worker count and the
    execution backend of *runner* affect only wall-clock time, so the
    returned text is byte-identical for any of them and is shared through
    the cache across runs.  Runner lifecycle follows
    :func:`repro.runner.registry.run_experiment`: a runner built from
    *workers* (when *runner* is ``None``) is closed before returning, a
    caller-provided runner stays open.

    *point_store*, *journal_dir* and *resume* are explicit parameters —
    never part of ``**kwargs`` — precisely so they can never leak into
    :func:`run_identity`: a warm shared store or a replayed journal changes
    how much work is scheduled, not a byte of the payload.  With
    *journal_dir*, sweep progress is checkpointed under
    ``<journal_dir>/<experiment>-<digest>.jsonl`` as it completes; a crashed
    run repeated with ``resume=True`` replays completed grid points and
    recomputes only the remainder.  The journal is deleted once the payload
    is successfully built (the result cache takes over).
    """
    identity = run_identity(experiment, scale_name, seed, dict(sorted(kwargs.items())))
    digest = config_digest(identity)
    if cache is not None and not force:
        hit = cache.load(experiment, digest)
        if hit is not None:
            return serialize_from_cache(hit)
    if point_store is not None:
        kwargs = dict(kwargs, point_store=point_store)
    journal = _open_journal(journal_dir, experiment, digest, resume=resume)
    if journal is not None:
        kwargs = dict(kwargs, journal=journal)
    try:
        outcome = run_experiment(
            experiment, scale_name, seed, runner=runner, workers=workers, **kwargs
        )
    except BaseException:
        if journal is not None:
            journal.finalize(success=False)
            print(
                f"sweep interrupted; resume it with --resume "
                f"(journal: {journal.path})",
                file=sys.stderr,
            )
        raise
    payload = serialize_payload(
        experiment, identity=identity, tables=outcome.tables, extras=outcome.extras
    )
    if cache is not None:
        cache.store(
            experiment, digest, identity=identity, tables=outcome.tables, extras=outcome.extras
        )
    if journal is not None:
        journal.finalize(success=True)
    return payload


def _open_journal(journal_dir: Any, experiment: str, digest: str, *, resume: bool):
    """Open the sweep journal for one run identity (``None`` = journaling off)."""
    if journal_dir is None:
        return None
    from repro.runner.journal import SweepJournal

    journal = SweepJournal.open_for_run(
        journal_dir, experiment, digest, resume=resume
    )
    if resume and journal.replayed_entries:
        print(journal.summary(), file=sys.stderr)
    return journal


def serialize_from_cache(payload: Dict[str, Any]) -> str:
    """Re-serialise a cached payload to the canonical text form."""
    import json

    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


# --------------------------------------------------------------------------- #
def _coerce_override_token(token: str) -> Any:
    """Parse one ``--set`` value token into int, float or string."""
    text = token.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_overrides(items: List[str]) -> Dict[str, Any]:
    """Parse ``--set FIELD=V1[,V2,...]`` items into a field -> value mapping.

    A comma-separated value list becomes a tuple (replacing a sweep axis'
    values); a single token stays scalar.
    """
    overrides: Dict[str, Any] = {}
    for item in items:
        field, sep, value = item.partition("=")
        field = field.strip()
        if not sep or not field or not value.strip():
            raise ValueError(f"--set expects FIELD=VALUE[,VALUE...], got {item!r}")
        if field in overrides:
            raise ValueError(f"duplicate --set for field {field!r}")
        tokens = [t for t in value.split(",") if t.strip()]
        if not tokens:
            raise ValueError(f"--set expects FIELD=VALUE[,VALUE...], got {item!r}")
        parsed = tuple(_coerce_override_token(t) for t in tokens)
        overrides[field] = parsed if len(parsed) > 1 else parsed[0]
    return overrides


def scenario_payload(
    name: str,
    scale_name: str,
    seed: int,
    *,
    runner: Optional[ParallelRunner] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    overrides: Optional[Dict[str, Any]] = None,
    point_store: Any = None,
    journal_dir: Any = None,
    resume: bool = False,
    **kwargs: Any,
) -> str:
    """Run (or fetch) a scenario and return its canonical JSON payload.

    A figure-backed scenario with no ``--set`` overrides delegates to
    :func:`experiment_payload` under the figure's own name and identity, so
    its output is byte-identical to the figure run (and to the golden
    snapshot at the default scale/seed) and shares the figure's cache
    entries.  Any override — and every scenario the paper never ran — is
    keyed by :func:`scenario_run_identity` and cached under
    ``scenario-<name>``.
    """
    from repro.runner.registry import _normalise

    spec = get_scenario(name)
    overrides = dict(overrides or {})
    if not overrides and spec.experiment is not None:
        return experiment_payload(
            spec.experiment,
            scale_name,
            seed,
            runner=runner,
            cache=cache,
            force=force,
            point_store=point_store,
            journal_dir=journal_dir,
            resume=resume,
            **kwargs,
        )
    if spec.kind == "analytical":
        raise ValueError(
            f"scenario {name!r} is analytical; --set overrides do not apply"
        )
    for field in sorted(overrides):
        spec = spec.apply_override(field, overrides[field])

    identity = scenario_run_identity(spec, scale_name, seed, dict(sorted(kwargs.items())))
    digest = config_digest(identity)
    # One label for the payload's experiment field and the cache directory,
    # so a cache hit re-serialises to exactly the fresh-run bytes.
    cache_key = f"scenario-{name}"
    if cache is not None and not force:
        hit = cache.load(cache_key, digest)
        if hit is not None:
            return serialize_from_cache(hit)
    journal = _open_journal(journal_dir, cache_key, digest, resume=resume)
    try:
        result = run_scenario(
            spec,
            scale_name,
            seed,
            runner=runner,
            point_store=point_store,
            journal=journal,
            **kwargs,
        )
    except BaseException:
        if journal is not None:
            journal.finalize(success=False)
            print(
                f"sweep interrupted; resume it with --resume "
                f"(journal: {journal.path})",
                file=sys.stderr,
            )
        raise
    tables, extras = _normalise(result)
    payload = serialize_payload(
        cache_key, identity=identity, tables=tables, extras=extras
    )
    if cache is not None:
        cache.store(cache_key, digest, identity=identity, tables=tables, extras=extras)
    if journal is not None:
        journal.finalize(success=True)
    return payload


# --------------------------------------------------------------------------- #
def _emit_payload(payload: str, args: argparse.Namespace) -> int:
    """Write a run's canonical JSON to ``--out`` or print it as markdown."""
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload)
        print(f"wrote {args.out}")
    else:
        import json

        decoded = json.loads(payload)
        from repro.core.results import SweepTable

        for name in sorted(decoded["tables"]):
            print(SweepTable.from_json_dict(decoded["tables"][name]).to_markdown())
            print()
        if decoded.get("extras"):
            print("extras:", json.dumps(decoded["extras"], sort_keys=True))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment == "scenario":
        return _run_scenario_cmd(args)
    if args.name is not None:
        raise ValueError("only `repro run scenario <name>` takes a second name")
    if args.overrides:
        raise ValueError("--set applies to `repro run scenario <name>` only")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    point_store = _make_point_store(args)
    kwargs: Dict[str, Any] = {}
    if args.decoder_backend is not None:
        kwargs["decoder_backend"] = args.decoder_backend
    if args.adaptive:
        kwargs["adaptive"] = True
    if (kwargs or point_store is not None) and not EXPERIMENTS[args.experiment].stochastic:
        flags = ", ".join(
            sorted(kwargs) + (["point_store"] if point_store is not None else [])
        )
        raise ValueError(
            f"{args.experiment} is analytical and does not simulate the link; "
            f"{flags} does not apply"
        )
    if kwargs.get("adaptive") and args.experiment not in ADAPTIVE_EXPERIMENTS:
        raise ValueError(
            f"--adaptive applies to the fault-map sweeps {list(ADAPTIVE_EXPERIMENTS)}"
        )
    journal_dir = _journal_dir(args, stochastic=EXPERIMENTS[args.experiment].stochastic)
    with make_runner(args) as runner:
        payload = experiment_payload(
            args.experiment,
            args.scale,
            args.seed,
            runner=runner,
            cache=cache,
            force=args.force,
            point_store=point_store,
            journal_dir=journal_dir,
            resume=args.resume,
            **kwargs,
        )
    _report_point_store(point_store)
    _report_task_failures(runner)
    _write_metrics(args)
    return _emit_payload(payload, args)


def _write_metrics(args: argparse.Namespace) -> None:
    """Honour ``--metrics-out``: snapshot the process registry to a file."""
    if getattr(args, "metrics_out", None) is None:
        return
    from repro.runner import telemetry

    path = telemetry.write_snapshot(args.metrics_out)
    print(f"wrote metrics snapshot {path}", file=sys.stderr)


def _make_point_store(args: argparse.Namespace):
    """The shared :class:`PointStore` the ``--point-store`` flag asks for."""
    if args.point_store is None:
        return None
    from repro.runner.point_store import PointStore

    return PointStore(args.point_store)


def _report_point_store(point_store) -> None:
    """Tell the user what the shared store saved (stderr, like a progress line)."""
    if point_store is not None:
        print(point_store.summary(), file=sys.stderr)


def _journal_dir(args: argparse.Namespace, *, stochastic: bool) -> Optional[Path]:
    """Where ``repro run`` journals sweep progress (``None`` = journaling off)."""
    if args.resume and args.no_journal:
        raise ValueError("--resume replays the sweep journal; drop --no-journal")
    if not stochastic:
        # Analytical experiments finish in milliseconds: nothing to resume.
        if args.resume:
            raise ValueError(
                "--resume applies to simulated sweeps only (this run is analytical)"
            )
        return None
    if args.no_journal:
        return None
    return Path(args.cache_dir) / "journal"


def _report_task_failures(runner: ParallelRunner) -> None:
    """Summarise quarantined work items (stderr), one line per item."""
    failures = runner.task_failures
    if not failures:
        return
    store = runner.quarantine_store
    where = f" under {store.root}" if store is not None else ""
    print(
        f"warning: {len(failures)} work item(s) quarantined{where}; "
        f"the affected grid points were merged from surviving items only "
        f"and never written to any cache:",
        file=sys.stderr,
    )
    for sentinel in failures:
        print(f"  - {sentinel.summary()}", file=sys.stderr)


def _run_scenario_cmd(args: argparse.Namespace) -> int:
    if args.name is None:
        raise ValueError(
            f"`repro run scenario` needs a scenario name; choose from {scenario_names()}"
        )
    spec = get_scenario(args.name)
    overrides = parse_overrides(args.overrides)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    point_store = _make_point_store(args)
    kwargs: Dict[str, Any] = {}
    if args.decoder_backend is not None:
        kwargs["decoder_backend"] = args.decoder_backend
    if args.adaptive:
        kwargs["adaptive"] = True
    if spec.kind == "analytical" and (kwargs or overrides or point_store is not None):
        raise ValueError(
            f"scenario {spec.name!r} is analytical and does not simulate the link; "
            "--set/--decoder-backend/--adaptive/--point-store do not apply"
        )
    if kwargs.get("adaptive") and spec.kind != "fault":
        raise ValueError("--adaptive applies to fault-map scenarios only")
    journal_dir = _journal_dir(args, stochastic=spec.kind != "analytical")
    with make_runner(args) as runner:
        payload = scenario_payload(
            args.name,
            args.scale,
            args.seed,
            runner=runner,
            cache=cache,
            force=args.force,
            overrides=overrides,
            point_store=point_store,
            journal_dir=journal_dir,
            resume=args.resume,
            **kwargs,
        )
    _report_point_store(point_store)
    _report_task_failures(runner)
    _write_metrics(args)
    return _emit_payload(payload, args)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for spec in EXPERIMENTS.values():
        kind = "monte-carlo" if spec.stochastic else "analytical"
        print(f"  {spec.name:<14} {spec.figure:<12} [{kind}] {spec.summary}")
    print("scales:")
    for scale in SCALES.values():
        print(
            f"  {scale.name:<8} payload={scale.payload_bits}b packets={scale.num_packets} "
            f"maps={scale.num_fault_maps} snr_points={len(scale.snr_points_db)}"
        )
    print("execution backends (topology only; results are identical):")
    print(f"  {' '.join(sorted(execution_backend_names()))}")
    print(f"scenarios: {len(scenario_names())} registered (see `repro scenarios ls`)")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    listings = [scenario_listing(get_scenario(name)) for name in scenario_names()]
    if args.json:
        print(json.dumps(listings, sort_keys=True, indent=2))
        return 0
    print("scenarios (run with `repro run scenario <name>`):")
    for entry in listings:
        axes = ", ".join(
            "{}={}".format(
                axis["field"],
                "scale" if axis["values"] == "scale-default" else len(axis["values"]),
            )
            for axis in entry["axes"]
        )
        origin = entry["experiment"] or "new"
        print(
            f"  {entry['name']:<20} [{entry['kind']:<10}] ({origin:<13}) "
            f"axes: {axes or '-':<30} {entry['summary']}"
        )
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """``repro backends ls [--json]`` — all three registries, with reasons.

    Decoder families carry a real availability probe (compiled extension,
    importable package); execution backends are stdlib-only topology and are
    always available; scenarios are listed by name so one command answers
    "what can this machine run".
    """
    import json

    from repro.phy.turbo.backends import DEFAULT_BACKEND as DECODER_DEFAULT
    from repro.phy.turbo.backends import family_listing

    decoder = family_listing()
    execution = [
        {
            "name": name,
            "available": True,
            "reason": "stdlib-only execution topology, always available",
            "default": name == DEFAULT_BACKEND,
            "default_parallel": name == DEFAULT_PARALLEL_BACKEND,
        }
        for name in sorted(execution_backend_names())
    ]
    scenarios = list(scenario_names())
    if args.json:
        print(
            json.dumps(
                {
                    "decoder_backends": decoder,
                    "execution_backends": execution,
                    "scenarios": scenarios,
                },
                sort_keys=True,
                indent=2,
            )
        )
        return 0
    print("decoder backends (select with --decoder-backend):")
    for entry in decoder:
        status = "available" if entry["available"] else "unavailable"
        flags = []
        if entry["family"] == DECODER_DEFAULT:
            flags.append("default")
        flags.append("exact" if entry["exact"] else "max-log")
        if entry["threaded"]:
            flags.append("threaded (@t<N>)")
        print(
            f"  {entry['family']:<8} [{status:<11}] ({', '.join(flags)}) "
            f"{entry['reason']}"
        )
    print("execution backends (topology only; results are identical):")
    for entry in execution:
        flags = []
        if entry["default"]:
            flags.append("default")
        if entry["default_parallel"]:
            flags.append("default with --workers")
        suffix = f" ({', '.join(flags)})" if flags else ""
        print(f"  {entry['name']:<8} {entry['reason']}{suffix}")
    print(f"scenarios: {len(scenarios)} registered (see `repro scenarios ls`)")
    return 0


def _cmd_bler(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    config = scale.link_config()

    def make_task(chunk_index: int) -> LinkChunkTask:
        return LinkChunkTask(
            config=config,
            snr_db=args.snr,
            num_packets=args.chunk_packets,
            entropy=args.seed,
            key=(chunk_index,),
        )

    with make_runner(args) as runner:
        outcome = runner.run_adaptive_proportion(
            make_task,
            count_block_errors,
            confidence=args.confidence,
            relative_error=args.relative_error,
            bler_floor=args.bler_floor,
            max_trials=args.max_packets,
            map_chunks=count_block_errors_batched,
        )
    estimate = outcome.estimate
    print(
        f"BLER at {args.snr:.1f} dB ({scale.name} scale): {estimate.value:.4f} "
        f"± {estimate.half_width:.4f} ({estimate.confidence:.0%} Wilson)"
    )
    print(
        f"  errors={outcome.errors} packets={outcome.trials} "
        f"chunks={outcome.num_chunks} stop={outcome.stop_reason}"
    )
    _write_metrics(args)
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    names = args.experiments or list(GOLDEN_EXPERIMENTS) + list(GOLDEN_SCENARIOS)
    args.out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        if name in EXPERIMENTS:
            payload = experiment_payload(name, args.scale, args.seed, workers=1, cache=None)
            path = args.out_dir / f"{name}.json"
        else:
            payload = scenario_payload(name, args.scale, args.seed, cache=None)
            path = args.out_dir / f"scenario-{name}.json"
        path.write_text(payload)
        print(f"wrote {path}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.heartbeat_interval is not None:
        kwargs["heartbeat_interval"] = args.heartbeat_interval or None
    return run_worker(
        args.connect,
        connect_retries=args.connect_retries,
        retry_delay=args.retry_delay,
        once=args.once,
        slots=args.slots,
        **kwargs,
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear(args.experiment)
        scope = f" for {args.experiment}" if args.experiment else ""
        print(f"removed {removed} cached run(s){scope} from {args.cache_dir}")
        return 0
    shown = 0
    for experiment, digest, path in cache.iter_entries():
        if args.experiment is not None and experiment != args.experiment:
            continue
        detail = ""
        payload = cache.load(experiment, digest)
        if payload is not None:
            identity = payload.get("identity", {})
            detail = f" scale={identity.get('scale', '?')} seed={identity.get('seed', '?')}"
        print(f"  {experiment:<14} {digest}{detail}  ({path.stat().st_size} bytes)")
        shown += 1
    if not shown:
        print(f"cache at {args.cache_dir} is empty")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runner.serve import serve_forever_from_cli

    return serve_forever_from_cli(
        args.cache,
        point_store_dir=args.point_store,
        bind=args.bind,
        log=lambda message: print(message, file=sys.stderr),
    )


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.runner import telemetry

    try:
        snapshot = telemetry.load_snapshot(args.snapshot)
    except FileNotFoundError:
        raise ValueError(f"no metrics snapshot at {args.snapshot}") from None
    except json.JSONDecodeError:
        raise ValueError(f"{args.snapshot} is not a JSON metrics snapshot") from None
    if args.json:
        print(json.dumps(snapshot, sort_keys=True, indent=2))
    else:
        print(telemetry.summarize_snapshot(snapshot))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.target == "decoder":
        from repro.runner.bench import run_and_record_decoder_backends

        run_and_record_decoder_backends(args.scale)
        return 0

    from repro.runner.bench import FRONT_END_TARGET_SPEEDUP, run_and_record_front_end

    section = run_and_record_front_end(args.scale, with_bler=not args.no_bler)
    speedup_at_32 = section["speedup_vs_seed"].get("32")
    if speedup_at_32 is not None:
        status = "meets" if speedup_at_32 >= FRONT_END_TARGET_SPEEDUP else "below"
        print(
            f"batched front end at batch 32: {speedup_at_32:.2f}x seed "
            f"({status} the {FRONT_END_TARGET_SPEEDUP:.0f}x target)"
        )
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "list": _cmd_list,
    "scenarios": _cmd_scenarios,
    "backends": _cmd_backends,
    "bler": _cmd_bler,
    "worker": _cmd_worker,
    "golden": _cmd_golden,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "metrics": _cmd_metrics,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:
        # Domain validation (negative seeds/workers, bad floors, ...) should
        # read like a CLI error, not a traceback.
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module execution helper
    sys.exit(main())
