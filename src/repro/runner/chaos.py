"""Deterministic fault injection for the runner stack.

The paper's premise is graceful operation on an unreliable substrate; this
module makes the *runner's* substrate unreliable on demand, so the
requeue/heartbeat/torn-write recovery paths are exercised under real
injected faults instead of being trusted on inspection.  A
:class:`FaultPlan` is parsed from a compact spec string (the ``--chaos``
flag, or the ``REPRO_CHAOS`` environment variable — which worker daemon
subprocesses inherit), and the hook points consult the active plan:

* :func:`repro.runner.backends.wire.send_message` /
  :func:`~repro.runner.backends.wire.recv_message` — delay, truncate or
  drop a frame, or drop the whole connection;
* the worker serve loop — kill the connection mid-task, as if the daemon
  process had been SIGKILLed and restarted by a supervisor;
* :func:`repro.runner.cache.atomic_write_text` — tear a cache / point-store
  write, leaving a truncated file at the final path (what a crash during a
  non-atomic write would leave behind).

Every directive fires **once**, when its per-process event counter reaches
the requested ordinal, so a failure schedule is reproducible: the same spec
against the same workload injects the same faults.  Only *data* frames
(``task`` / ``result`` / ``error``) are counted — heartbeats and handshakes
are timing-dependent and would make the schedule racy.

Spec grammar (directives separated by ``;`` or ``,``)::

    seed=7                 # seeds the delay jitter (default 0)
    drop-send=N            # drop the connection instead of sending the Nth data frame
    truncate-send=N        # send half of the Nth data frame, then drop (torn frame)
    delay-send=N:SECONDS   # sleep a jittered SECONDS before the Nth data frame
    drop-recv=N            # drop the connection after receiving the Nth data frame
    kill-task=N            # worker: die mid-task on the Nth received task (reconnects)
    tear-write=N           # leave the Nth atomic cache/point-store write truncated

The whole point of the conformance suite around this module: a sweep run
under any such plan must produce **byte-identical** results to a fault-free
run — at-least-once redelivery, de-duplication, atomic stores and corrupt-
entry quarantine absorb every injected fault.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Environment variable carrying the chaos spec (inherited by local worker
#: daemon subprocesses, so one flag faults the whole fleet).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Frame kinds that advance the send/recv counters.  Heartbeats, hellos,
#: goodbyes and shutdowns are excluded: their counts depend on scheduling
#: timing, and a deterministic plan must not.
_DATA_FRAME_KINDS = ("task", "result", "error")


class ChaosInjected(ConnectionResetError):
    """A connection-level fault injected by the active :class:`FaultPlan`.

    Subclasses :class:`ConnectionResetError` so every handler that survives
    a real peer reset survives an injected one — the entire point of the
    exercise.
    """


def _parse_ordinal(directive: str, value: str) -> int:
    try:
        ordinal = int(value)
    except ValueError:
        raise ValueError(f"chaos directive {directive} expects an integer, got {value!r}") from None
    if ordinal < 1:
        raise ValueError(f"chaos directive {directive} expects an ordinal >= 1, got {ordinal}")
    return ordinal


@dataclass
class FaultPlan:
    """A parsed, seeded, once-per-directive fault schedule.

    Counters are per-process and thread-safe; a plan installed in the
    coordinator and inherited (via :data:`CHAOS_ENV_VAR`) by worker daemons
    therefore fires each directive once *per process* — the coordinator and
    every worker each see their own copy of the schedule.
    """

    spec: str = ""
    seed: int = 0
    drop_send: Optional[int] = None
    truncate_send: Optional[int] = None
    delay_send: Optional[Tuple[int, float]] = None
    drop_recv: Optional[int] = None
    kill_task: Optional[int] = None
    tear_write: Optional[int] = None

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)
    _counts: Dict[str, int] = field(default_factory=dict, repr=False, compare=False)
    _fired: Dict[str, bool] = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--chaos`` / ``REPRO_CHAOS`` spec string."""
        plan = cls(spec=spec)
        for raw in spec.replace(",", ";").split(";"):
            token = raw.strip()
            if not token:
                continue
            directive, sep, value = token.partition("=")
            directive = directive.strip().lower()
            value = value.strip()
            if not sep or not value:
                raise ValueError(f"chaos directive {token!r} expects NAME=VALUE")
            if directive == "seed":
                plan.seed = _parse_ordinal(directive, value) if value != "0" else 0
            elif directive == "drop-send":
                plan.drop_send = _parse_ordinal(directive, value)
            elif directive == "truncate-send":
                plan.truncate_send = _parse_ordinal(directive, value)
            elif directive == "delay-send":
                ordinal, colon, seconds = value.partition(":")
                if not colon:
                    raise ValueError(
                        f"chaos directive delay-send expects N:SECONDS, got {value!r}"
                    )
                plan.delay_send = (
                    _parse_ordinal(directive, ordinal),
                    float(seconds),
                )
                if plan.delay_send[1] < 0:
                    raise ValueError("chaos delay-send seconds must be non-negative")
            elif directive == "drop-recv":
                plan.drop_recv = _parse_ordinal(directive, value)
            elif directive == "kill-task":
                plan.kill_task = _parse_ordinal(directive, value)
            elif directive == "tear-write":
                plan.tear_write = _parse_ordinal(directive, value)
            else:
                raise ValueError(f"unknown chaos directive {directive!r} in {spec!r}")
        return plan

    # ------------------------------------------------------------------ #
    def _take(self, scope: str, ordinal: Optional[int]) -> bool:
        """Advance *scope*'s counter; ``True`` exactly when it hits *ordinal*."""
        if ordinal is None:
            return False
        with self._lock:
            count = self._counts.get(scope, 0) + 1
            self._counts[scope] = count
            if count == ordinal and not self._fired.get(scope):
                self._fired[scope] = True
                fired = True
            else:
                fired = False
        if fired:
            # Imported lazily: chaos is consulted from deep inside the wire
            # layer, and telemetry must stay optional to that hot path.
            from repro.runner import telemetry

            telemetry.inc("chaos_injected_total", directive=scope)
            telemetry.event("chaos-injected", directive=scope, ordinal=ordinal)
        return fired

    def _jittered(self, seconds: float) -> float:
        """A deterministic 0.5x–1.5x jitter of *seconds*, from the plan seed."""
        return seconds * (0.5 + random.Random(self.seed).random())

    # ------------------------------------------------------------------ #
    # hook points
    # ------------------------------------------------------------------ #
    def filter_send(self, sock: Any, message: Tuple[Any, ...], frame: bytes) -> bytes:
        """Apply send-side faults to one outgoing frame.

        Returns the frame to send (unchanged when no directive fires).  A
        ``drop-send`` closes the socket and raises :class:`ChaosInjected`;
        a ``truncate-send`` writes half the frame first, so the peer sees a
        torn frame followed by EOF.
        """
        if not message or message[0] not in _DATA_FRAME_KINDS:
            return frame
        if self.delay_send is not None and self._take("delay-send", self.delay_send[0]):
            time.sleep(self._jittered(self.delay_send[1]))
        if self._take("truncate-send", self.truncate_send):
            try:
                sock.sendall(frame[: max(1, len(frame) // 2)])
            except OSError:
                pass
            _close_quietly(sock)
            raise ChaosInjected("chaos: truncated frame mid-send")
        if self._take("drop-send", self.drop_send):
            _close_quietly(sock)
            raise ChaosInjected("chaos: dropped connection before send")
        return frame

    def filter_recv(self, sock: Any, message: Tuple[Any, ...]) -> None:
        """Apply recv-side faults after one decoded incoming frame."""
        if not message or message[0] not in _DATA_FRAME_KINDS:
            return
        if self._take("drop-recv", self.drop_recv):
            _close_quietly(sock)
            raise ChaosInjected("chaos: dropped connection after recv")

    def take_kill_task(self) -> bool:
        """Whether the worker should die mid-task on this received task."""
        return self._take("kill-task", self.kill_task)

    def take_tear_write(self) -> bool:
        """Whether this atomic write should be left torn at the final path."""
        return self._take("tear-write", self.tear_write)


def _close_quietly(sock: Any) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - best effort
        pass


# --------------------------------------------------------------------------- #
# the active plan (process-global, env-inherited)
# --------------------------------------------------------------------------- #
_UNRESOLVED = object()
_active: Any = _UNRESOLVED
_active_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The process's active plan (``None`` when chaos is off).

    Resolved lazily from :data:`CHAOS_ENV_VAR` on first use, so worker
    daemons spawned with the variable in their environment self-arm without
    any extra plumbing.
    """
    global _active
    if _active is _UNRESOLVED:
        with _active_lock:
            if _active is _UNRESOLVED:
                spec = os.environ.get(CHAOS_ENV_VAR)
                _active = FaultPlan.parse(spec) if spec else None
    return _active


def activate(spec_or_plan: "str | FaultPlan | None", *, export: bool = False) -> Optional[FaultPlan]:
    """Install a plan (or ``None`` to disable) as the process's active plan.

    With *export*, the spec is also written to :data:`CHAOS_ENV_VAR` so
    subprocesses — the locally spawned worker daemons — inherit the same
    schedule (each firing it independently, per process).
    """
    global _active
    plan = (
        FaultPlan.parse(spec_or_plan) if isinstance(spec_or_plan, str) else spec_or_plan
    )
    with _active_lock:
        _active = plan
    if export:
        if plan is None:
            os.environ.pop(CHAOS_ENV_VAR, None)
        else:
            os.environ[CHAOS_ENV_VAR] = plan.spec
    return plan


def reset() -> None:
    """Forget the active plan (re-resolves from the environment lazily)."""
    global _active
    with _active_lock:
        _active = _UNRESOLVED
