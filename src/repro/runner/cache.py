"""On-disk JSON cache for experiment results.

Layout: one file per run, ``<root>/<experiment>/<digest>.json``, where the
digest hashes the full run identity — experiment name, scale parameters,
seed and any driver keyword overrides.  A cache hit therefore means "this
exact sweep was already computed" and short-circuits the Monte-Carlo work;
worker count is deliberately *not* part of the key because it cannot change
the results (see :mod:`repro.runner.parallel`).

The stored payload is canonical JSON (sorted keys, stable float repr), so a
cache file written by a 4-worker run is byte-identical to one written by a
serial run — the property the acceptance tests pin.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core.results import SweepTable, _jsonable
from repro.runner import chaos, telemetry

#: Bump when the payload layout changes so stale cache entries miss cleanly.
CACHE_FORMAT_VERSION = 1


def atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* so readers never observe a partial file.

    The text lands in a temporary file in the same directory (same
    filesystem, so the final :func:`os.replace` is an atomic rename).  Two
    coordinators racing to store the same digest both succeed: last rename
    wins and, because payloads are canonical JSON of the same identity, both
    candidates are byte-identical anyway.

    An active chaos plan's ``tear-write`` directive replaces one write with
    the thing this function exists to prevent — a truncated file at the
    final path — so the corrupt-entry quarantine paths get exercised for
    real (a crash between a non-atomic open and its final flush).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    plan = chaos.active_plan()
    if plan is not None and plan.take_tear_write():
        path.write_text(text[: max(1, len(text) // 2)])
        return
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def decoder_backend_identity(requested: str) -> Dict[str, str]:
    """The cache-key contribution of a requested decoder backend.

    Resolves the request to the backend that will *actually* run on this
    machine (``auto`` detection, unavailable-family fallback to numpy) and
    records its name **and** compute dtype, so results produced by
    different backends or precisions are never conflated — and a request
    that silently fell back to numpy shares the numpy entry instead of
    poisoning the numba one.  ``BackendSpec.name`` deliberately excludes
    ``num_threads``: rows decode independently, so an ``@t4`` request
    produces bit-identical results to ``@t1`` and must share its entry.
    """
    from repro.phy.turbo.backends import resolve_backend

    spec = resolve_backend(requested, warn=False)
    return {"name": spec.name, "dtype": spec.dtype_name}


def config_digest(identity: Dict[str, Any]) -> str:
    """Stable hex digest of a run-identity mapping (the cache key)."""
    canonical = json.dumps(canonicalize(identity), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


def canonicalize(value: Any) -> Any:
    """Reduce arbitrary run-identity / extras values to canonical JSON form.

    Dataclasses become tagged mappings, mapping keys are stringified and
    sorted, numpy scalars collapse to plain numbers (via the same coercion
    :class:`SweepTable` uses) and anything else falls back to ``repr``.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **canonicalize(asdict(value))}
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    coerced = _jsonable(value)
    if isinstance(coerced, (str, int, float, bool)) or coerced is None:
        return coerced
    return repr(value)


class ResultCache:
    """A directory of cached experiment runs.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first store).
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def path_for(self, experiment: str, digest: str) -> Path:
        """File that does / would hold the run with this identity digest."""
        return self.root / experiment / f"{digest}.json"

    def load(self, experiment: str, digest: str) -> Optional[Dict[str, Any]]:
        """Return the cached payload for a run identity, or ``None`` on miss."""
        return self.load_with_status(experiment, digest)[0]

    def load_with_status(
        self, experiment: str, digest: str
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Like :meth:`load`, but also say *why* a lookup missed.

        Returns ``(payload, status)`` where status is one of ``"ok"``,
        ``"missing"``, ``"corrupt"`` (the entry was torn on disk and has
        just been quarantined — or a ``.corrupt`` sibling from an earlier
        quarantine exists), ``"stale-format"`` or ``"unreadable"``.  The
        query server uses the status to answer 404 vs 410 with a reason
        instead of a bare failure.
        """
        path = self.path_for(experiment, digest)
        if not path.exists():
            status = (
                "corrupt"
                if path.with_name(path.name + ".corrupt").exists()
                else "missing"
            )
            telemetry.inc("store_misses_total", store="cache")
            return None, status
        try:
            payload = json.loads(path.read_text())
        except OSError:
            telemetry.inc("store_misses_total", store="cache")
            return None, "unreadable"
        except ValueError:
            # A file that exists but is not JSON was damaged after it was
            # written (stores are atomic, so it cannot be a half-write from
            # a live writer).  ValueError covers both JSONDecodeError and
            # the UnicodeDecodeError a torn entry with invalid UTF-8 bytes
            # raises from read_text — either way the contract is the same:
            # quarantine, warn, recompute.  Move it aside rather than
            # silently letting the next store destroy the evidence.
            quarantine = path.with_name(path.name + ".corrupt")
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantine = path
            warnings.warn(
                f"cache entry {experiment}/{digest} is corrupt JSON; "
                f"quarantined at {quarantine}",
                RuntimeWarning,
                stacklevel=2,
            )
            telemetry.inc("store_quarantines_total", store="cache")
            telemetry.inc("store_misses_total", store="cache")
            telemetry.event(
                "store-quarantine", store="cache", entry=f"{experiment}/{digest}"
            )
            return None, "corrupt"
        if payload.get("cache_format") != CACHE_FORMAT_VERSION:
            telemetry.inc("store_misses_total", store="cache")
            return None, "stale-format"
        telemetry.inc("store_hits_total", store="cache")
        return payload, "ok"

    def store(
        self,
        experiment: str,
        digest: str,
        *,
        identity: Dict[str, Any],
        tables: Dict[str, SweepTable],
        extras: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write a run's payload and return the file path."""
        path = self.path_for(experiment, digest)
        atomic_write_text(
            path,
            serialize_payload(experiment, identity=identity, tables=tables, extras=extras),
        )
        telemetry.inc("store_writes_total", store="cache")
        return path

    def entries(self) -> Dict[str, int]:
        """Number of cached runs per experiment (for ``repro cache ls``)."""
        if not self.root.exists():
            return {}
        return {
            directory.name: sum(1 for _ in directory.glob("*.json"))
            for directory in sorted(self.root.iterdir())
            if directory.is_dir()
        }

    def iter_entries(self) -> Iterator[Tuple[str, str, Path]]:
        """Yield ``(experiment, digest, path)`` for every cached run file."""
        if not self.root.exists():
            return
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                yield directory.name, path.stem, path

    def clear(self, experiment: Optional[str] = None) -> int:
        """Delete cached runs (all, or one experiment's) and return the count.

        Empty per-experiment directories are removed as well, so a cleared
        cache looks exactly like a fresh one.
        """
        removed = 0
        for entry_experiment, _digest, path in list(self.iter_entries()):
            if experiment is not None and entry_experiment != experiment:
                continue
            path.unlink()
            removed += 1
            parent = path.parent
            if not any(parent.iterdir()):
                parent.rmdir()
        return removed


class QuarantineStore:
    """On-disk records of work items quarantined under ``--on-task-error=quarantine``.

    One JSON file per poisoned work item, ``<root>/<digest>.json``, where the
    digest hashes the task identity (callable name + canonicalized work
    item).  Retrying the same sweep therefore overwrites the same record
    instead of accumulating duplicates, and the file name is stable enough
    to reference from a bug report.
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)

    def path_for(self, fn_name: str, task: Any) -> Path:
        digest = config_digest({"fn": fn_name, "task": canonicalize(task)})
        return self.root / f"{digest}.json"

    def record(
        self,
        fn_name: str,
        task: Any,
        *,
        error: str,
        attempts: int,
        workers: Tuple[str, ...] = (),
    ) -> Path:
        """Persist one quarantined item (traceback + task identity)."""
        path = self.path_for(fn_name, task)
        payload = {
            "quarantine_format": 1,
            "fn": fn_name,
            "task": canonicalize(task),
            "error": error,
            "attempts": attempts,
            "workers": sorted(workers),
        }
        atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return path

    def entries(self) -> Tuple[Path, ...]:
        """All quarantine record files, sorted for stable reporting."""
        if not self.root.exists():
            return ()
        return tuple(sorted(self.root.glob("*.json")))


# --------------------------------------------------------------------------- #
def serialize_payload(
    experiment: str,
    *,
    identity: Dict[str, Any],
    tables: Dict[str, SweepTable],
    extras: Optional[Dict[str, Any]] = None,
) -> str:
    """Canonical JSON text for a run (also the golden-file format)."""
    payload = {
        "cache_format": CACHE_FORMAT_VERSION,
        "experiment": experiment,
        "identity": canonicalize(identity),
        "tables": {name: table.to_json_dict() for name, table in sorted(tables.items())},
        "extras": canonicalize(extras or {}),
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def deserialize_tables(payload: Dict[str, Any]) -> Dict[str, SweepTable]:
    """Rebuild the :class:`SweepTable` mapping from a stored payload."""
    return {
        name: SweepTable.from_json_dict(table)
        for name, table in payload.get("tables", {}).items()
    }
