"""Content-addressed store of individual sweep-point results.

Where :class:`~repro.runner.cache.ResultCache` caches whole *runs* (one file
per experiment identity), the point store caches the atoms those runs are
made of: one file per merged grid-point result, keyed by a digest of the
point's full physical identity — resolved link configuration (decoder
backend included), protection scheme, operating conditions, packet/die
budgets, seed entropy and spawn-key coordinates.  Because every work item
derives its random stream from exactly those coordinates, two coordinators
that share a store directory compute each point once between them: the
second run of an overlapping grid loads every known point and schedules
zero work items for it.

The store is **pure topology**, like the execution backend: it never enters
a run identity, a cache key or a golden file, and the results it returns
round-trip exactly (integers stay integers, floats keep their shortest-repr
bits, statistics arrays come back as ``int64``) — so a warm-store run is
byte-identical to a cold one.

Layout: ``<root>/<digest>.json``, flat.  Keep the directory separate from a
:class:`ResultCache` root — the run cache treats every subdirectory as an
experiment, and mixing the two would pollute ``repro cache ls``.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.fault_simulator import FaultSimulationPoint
from repro.harq.metrics import HarqStatistics
from repro.runner import telemetry
from repro.runner.cache import (
    atomic_write_text,
    canonicalize,
    config_digest,
    decoder_backend_identity,
)

#: Bump when the payload or identity layout changes so stale entries miss.
POINT_STORE_FORMAT_VERSION = 1

#: Digests are short sha256 hex prefixes (see ``config_digest``); anything
#: else — path separators, dots, an empty string — is rejected before it can
#: touch the filesystem (the HTTP front end feeds user input through here).
_DIGEST_RE = re.compile(r"^[0-9a-f]{8,64}$")


# --------------------------------------------------------------------------- #
# point identities
# --------------------------------------------------------------------------- #
def _identity_config(config: Any) -> Dict[str, Any]:
    """Canonical identity of a link configuration, decoder resolved.

    The raw ``decoder_backend`` string is replaced by the backend that will
    *actually* run (name and compute dtype), mirroring the run cache: an
    ``auto`` request and an explicit ``numpy`` request produce byte-identical
    results, so they must share a point entry instead of recomputing it.
    """
    data = canonicalize(config)
    data["decoder_backend"] = decoder_backend_identity(config.decoder_backend)
    return data


def fault_point_identity(
    point: Any,
    *,
    num_packets: int,
    num_fault_maps: int,
    entropy: int,
    use_rake: bool,
    adaptive: Any = None,
) -> Dict[str, Any]:
    """The digestable identity of one fault-map grid point.

    Everything that can move a bit of the merged result is here — the
    :class:`~repro.runner.tasks.GridPoint` (spawn-key prefix, configuration,
    protection, operating conditions, fault model), the packet and die
    budgets, the seed entropy, the equalizer choice and the resolved
    adaptive-stopping parameters.  Batch aggregation and execution topology
    are deliberately absent: they cannot change results.
    """
    data = canonicalize(point)
    data["config"] = _identity_config(point.config)
    return {
        "store_format": POINT_STORE_FORMAT_VERSION,
        "kind": "fault",
        "point": data,
        "num_packets": int(num_packets),
        "num_fault_maps": int(num_fault_maps),
        "entropy": int(entropy),
        "use_rake": bool(use_rake),
        "adaptive": canonicalize(adaptive) if adaptive is not None else None,
    }


def bler_cell_identity(
    config: Any,
    *,
    snr_db: float,
    chunk_sizes: Sequence[int],
    entropy: int,
    key: Tuple[int, ...],
    use_rake: bool,
) -> Dict[str, Any]:
    """The digestable identity of one defect-free BLER grid cell.

    The chunk plan is part of the identity — chunk boundaries move the
    per-packet seed streams, so ``[8, 8, 4]`` and ``[10, 10]`` are different
    physics even at the same packet budget.
    """
    return {
        "store_format": POINT_STORE_FORMAT_VERSION,
        "kind": "bler",
        "config": _identity_config(config),
        "snr_db": float(snr_db),
        "chunk_sizes": [int(size) for size in chunk_sizes],
        "entropy": int(entropy),
        "key": [int(part) for part in key],
        "use_rake": bool(use_rake),
    }


# --------------------------------------------------------------------------- #
# exact result serialization
# --------------------------------------------------------------------------- #
def statistics_to_json(statistics: HarqStatistics) -> Dict[str, Any]:
    """Lossless JSON form of :class:`HarqStatistics` (all-integer fields)."""
    return {
        "num_packets": int(statistics.num_packets),
        "num_successful": int(statistics.num_successful),
        "total_transmissions": int(statistics.total_transmissions),
        "info_bits_per_packet": int(statistics.info_bits_per_packet),
        "attempts_per_transmission": [
            int(count) for count in statistics.attempts_per_transmission
        ],
        "failures_per_transmission": [
            int(count) for count in statistics.failures_per_transmission
        ],
    }


def statistics_from_json(data: Dict[str, Any]) -> HarqStatistics:
    """Rebuild :class:`HarqStatistics` exactly (arrays back to ``int64``)."""
    return HarqStatistics(
        num_packets=int(data["num_packets"]),
        num_successful=int(data["num_successful"]),
        total_transmissions=int(data["total_transmissions"]),
        info_bits_per_packet=int(data["info_bits_per_packet"]),
        attempts_per_transmission=np.asarray(
            data["attempts_per_transmission"], dtype=np.int64
        ),
        failures_per_transmission=np.asarray(
            data["failures_per_transmission"], dtype=np.int64
        ),
    )


def fault_point_to_json(point: FaultSimulationPoint) -> Dict[str, Any]:
    """Lossless JSON form of a merged :class:`FaultSimulationPoint`.

    Floats survive verbatim — ``json`` emits ``repr``-round-trippable
    decimals — so a stored point re-enters a table builder with the exact
    bits a fresh computation would have produced.
    """
    return {
        "snr_db": float(point.snr_db),
        "num_faults": int(point.num_faults),
        "defect_rate": float(point.defect_rate),
        "statistics": statistics_to_json(point.statistics),
        "per_map_throughput": [float(value) for value in point.per_map_throughput],
        "protection_name": str(point.protection_name),
    }


def fault_point_from_json(data: Dict[str, Any]) -> FaultSimulationPoint:
    """Rebuild a merged :class:`FaultSimulationPoint` exactly."""
    return FaultSimulationPoint(
        snr_db=float(data["snr_db"]),
        num_faults=int(data["num_faults"]),
        defect_rate=float(data["defect_rate"]),
        statistics=statistics_from_json(data["statistics"]),
        per_map_throughput=[float(value) for value in data["per_map_throughput"]],
        protection_name=str(data["protection_name"]),
    )


# --------------------------------------------------------------------------- #
class PointStore:
    """A directory of content-addressed grid-point results.

    Parameters
    ----------
    root:
        Store directory (created lazily on the first store).  Share it
        between coordinators — writes are atomic renames of canonical
        JSON, so concurrent writers of the same digest are benign (their
        payloads are byte-identical by construction).

    The ``hits`` / ``misses`` / ``writes`` counters cover this instance's
    lifetime and back the CLI's ``reused N point(s), computed M point(s)``
    summary line.
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------ #
    def path_for(self, digest: str) -> Path:
        """File that does / would hold this digest (rejecting bad tokens)."""
        if not _DIGEST_RE.match(digest):
            raise ValueError(f"malformed point digest {digest!r}")
        return self.root / f"{digest}.json"

    def digest(self, identity: Dict[str, Any]) -> str:
        """The content address of a point identity mapping."""
        return config_digest(identity)

    def load_payload(self, digest: str) -> Optional[Dict[str, Any]]:
        """The raw stored payload for a digest, or ``None`` on miss.

        Does not touch the hit/miss counters — those belong to the typed
        loaders the sweep paths use; this is the query-front-end accessor.
        """
        return self.load_payload_with_status(digest)[0]

    def load_payload_with_status(
        self, digest: str
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Like :meth:`load_payload`, but also say *why* a lookup missed.

        Returns ``(payload, status)`` with status one of ``"ok"``,
        ``"missing"``, ``"corrupt"``, ``"stale-format"`` or ``"unreadable"``
        — the same vocabulary as :meth:`ResultCache.load_with_status`.  A
        torn entry is quarantined to ``<digest>.json.corrupt`` with a
        :class:`RuntimeWarning` (point stores are written atomically, so a
        non-JSON file was damaged after the write) and reads as a miss, so
        the sweep recomputes and re-stores the point instead of failing.
        """
        path = self.path_for(digest)
        if not path.exists():
            status = (
                "corrupt"
                if path.with_name(path.name + ".corrupt").exists()
                else "missing"
            )
            return None, status
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None, "unreadable"
        except ValueError:
            # ValueError covers JSONDecodeError *and* the UnicodeDecodeError
            # a torn entry whose bytes are invalid UTF-8 raises from
            # read_text — both mean "damaged after an atomic write", and
            # both quarantine instead of crashing the coordinator.
            quarantine = path.with_name(path.name + ".corrupt")
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantine = path
            warnings.warn(
                f"point-store entry {digest} is corrupt JSON; "
                f"quarantined at {quarantine}",
                RuntimeWarning,
                stacklevel=2,
            )
            telemetry.inc("store_quarantines_total", store="point-store")
            telemetry.event("store-quarantine", store="point-store", entry=digest)
            return None, "corrupt"
        if payload.get("point_store_format") != POINT_STORE_FORMAT_VERSION:
            return None, "stale-format"
        return payload, "ok"

    def _load_result(self, digest: str, kind: str) -> Optional[Dict[str, Any]]:
        payload = self.load_payload(digest)
        if payload is None or payload.get("kind") != kind:
            self.misses += 1
            telemetry.inc("store_misses_total", store="point-store")
            return None
        self.hits += 1
        telemetry.inc("store_hits_total", store="point-store")
        return payload["result"]

    def _store_result(
        self, digest: str, *, kind: str, identity: Dict[str, Any], result: Dict[str, Any]
    ) -> Path:
        payload = {
            "point_store_format": POINT_STORE_FORMAT_VERSION,
            "kind": kind,
            "identity": canonicalize(identity),
            "result": result,
        }
        path = self.path_for(digest)
        atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=2) + "\n")
        self.writes += 1
        telemetry.inc("store_writes_total", store="point-store")
        return path

    # ------------------------------------------------------------------ #
    def load_fault_point(self, digest: str) -> Optional[FaultSimulationPoint]:
        """A stored merged fault point, or ``None`` on miss."""
        result = self._load_result(digest, "fault")
        return None if result is None else fault_point_from_json(result)

    def store_fault_point(
        self, digest: str, point: FaultSimulationPoint, identity: Dict[str, Any]
    ) -> Path:
        """Persist one merged fault point under its identity digest."""
        return self._store_result(
            digest, kind="fault", identity=identity, result=fault_point_to_json(point)
        )

    def load_statistics(self, digest: str) -> Optional[HarqStatistics]:
        """A stored merged BLER-cell statistics object, or ``None`` on miss."""
        result = self._load_result(digest, "bler")
        return None if result is None else statistics_from_json(result)

    def store_statistics(
        self, digest: str, statistics: HarqStatistics, identity: Dict[str, Any]
    ) -> Path:
        """Persist one merged BLER cell under its identity digest."""
        return self._store_result(
            digest,
            kind="bler",
            identity=identity,
            result=statistics_to_json(statistics),
        )

    # ------------------------------------------------------------------ #
    def iter_digests(self) -> Iterator[str]:
        """Every stored digest, sorted (for the query front end)."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*.json")):
            if _DIGEST_RE.match(path.stem):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_digests())

    def summary(self) -> str:
        """One human line for the CLI: what the store saved this run."""
        return (
            f"point store: reused {self.hits} point(s), "
            f"computed {self.writes} point(s)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointStore(root={str(self.root)!r})"


def resolve_point_store(value: "PointStore | Path | str | None") -> Optional[PointStore]:
    """Normalise a ``point_store`` argument (instance, path or ``None``)."""
    if value is None or isinstance(value, PointStore):
        return value
    return PointStore(value)
