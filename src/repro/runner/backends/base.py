"""Execution-backend abstraction for the experiment runner.

An *execution backend* owns the question "where does a work item run?" —
in-process, on a local process pool, or on remote worker daemons — while
everything that defines *what* runs stays in
:class:`~repro.runner.parallel.ParallelRunner` and
:mod:`repro.runner.tasks`: sharding, keyed seeding, round scheduling and
adaptive stopping.  Because every work item derives its random stream from
its sweep coordinates (never from the executing worker), two backends that
honour the :meth:`ExecutionBackend.submit` contract produce bit-identical
results; they differ only in wall-clock time and failure modes.

Execution topology is therefore **not physics**: the backend name is
deliberately excluded from the run identity that keys the result cache and
the golden files (see :func:`repro.runner.cli.run_identity`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence, Tuple

#: Valid ``on_task_error`` policies, shared by every backend family.
TASK_ERROR_POLICIES = ("fail", "quarantine")


def validate_task_error_policy(policy: str) -> str:
    """Normalise/validate an ``on_task_error`` policy token."""
    token = str(policy).strip().lower()
    if token not in TASK_ERROR_POLICIES:
        raise ValueError(
            f"on_task_error must be one of {TASK_ERROR_POLICIES}, got {policy!r}"
        )
    return token


@dataclass(frozen=True)
class TaskQuarantined:
    """Sentinel result for a work item whose *task code* raised.

    Under ``on_task_error="quarantine"`` a backend yields this in place of
    the item's result once the retry budget is exhausted, instead of
    aborting the round: the stream completes, and the caller decides what a
    missing item means for the sweep.  Worker *death* is not represented
    here — dead-worker items are requeued indefinitely (at-least-once
    delivery), because losing an executor says nothing about the task.
    """

    index: int
    error: str
    attempts: int = 1
    workers: Tuple[str, ...] = ()

    def summary(self) -> str:
        first_line = self.error.strip().splitlines()[-1] if self.error.strip() else "?"
        where = f" on {len(self.workers)} worker(s)" if self.workers else ""
        return (
            f"work item {self.index} quarantined after "
            f"{self.attempts} attempt(s){where}: {first_line}"
        )


class ExecutionBackend(ABC):
    """One strategy for executing a round of independent work items.

    Lifecycle: backends are cheap to construct and acquire their resources
    (process pools, listening sockets, worker daemons) lazily on the first
    :meth:`submit`, so building a runner for an analytical experiment never
    starts anything.  :meth:`close` releases whatever was acquired; backends
    are also context managers.  A backend instance is owned by a single
    :class:`~repro.runner.parallel.ParallelRunner` and is not thread-safe.
    """

    #: Registry token of the backend family (``"serial"``, ``"process"``, ...).
    name: str = "?"

    #: What a task-raised exception does to the round: ``"fail"`` aborts the
    #: stream with the remote traceback (the historical behaviour),
    #: ``"quarantine"`` yields a :class:`TaskQuarantined` sentinel for that
    #: index and lets the rest of the round complete.
    on_task_error: str = "fail"

    @abstractmethod
    def submit(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        """Execute ``fn`` over *tasks*, streaming ``(index, result)`` pairs.

        Pairs may arrive in any completion order but every index in
        ``range(len(tasks))`` is yielded **exactly once** — backends that
        retry lost work (at-least-once delivery) must de-duplicate before
        yielding.  A task that raises propagates the exception to the
        consumer under the default ``on_task_error="fail"`` policy and the
        remaining results of the round may be discarded; under
        ``"quarantine"`` the backend yields a :class:`TaskQuarantined`
        sentinel for that index once the retry budget is exhausted and the
        round completes.
        ``fn`` and every task must be picklable for any backend that leaves
        the calling process.

        Backends serve **one round at a time**: exhaust (or close) the
        returned stream before submitting the next round.  Stateless
        backends may tolerate interleaving, but stateful ones are free to
        refuse it (the socket backend raises).
        """

    def close(self) -> None:
        """Release pools / sockets / worker daemons (idempotent)."""

    # ------------------------------------------------------------------ #
    @property
    def is_serial(self) -> bool:
        """Whether work runs inline in the calling process."""
        return False

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
