"""In-process serial execution — the reference backend.

Every other backend is required to reproduce this one's results bit for bit
(the conformance suite in ``tests/test_execution_backends.py`` pins it), so
the serial backend is also the fallback used by tests and by environments
without multiprocessing or network support.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence, Tuple

from repro.runner.backends.base import ExecutionBackend


class SerialBackend(ExecutionBackend):
    """Execute every work item inline, in submission order."""

    name = "serial"

    def submit(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        for index, task in enumerate(tasks):
            yield index, fn(task)

    @property
    def is_serial(self) -> bool:
        return True
