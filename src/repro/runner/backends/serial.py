"""In-process serial execution — the reference backend.

Every other backend is required to reproduce this one's results bit for bit
(the conformance suite in ``tests/test_execution_backends.py`` pins it), so
the serial backend is also the fallback used by tests and by environments
without multiprocessing or network support.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Iterator, Sequence, Tuple

from repro.runner import telemetry
from repro.runner.backends.base import (
    ExecutionBackend,
    TaskQuarantined,
    validate_task_error_policy,
)


class SerialBackend(ExecutionBackend):
    """Execute every work item inline, in submission order.

    Parameters
    ----------
    on_task_error:
        ``"fail"`` (default) re-raises a task exception; ``"quarantine"``
        yields a :class:`TaskQuarantined` sentinel for the failing index so
        the round completes.  There is no retry budget in-process: the same
        interpreter would deterministically fail again.
    """

    name = "serial"

    def __init__(self, *, on_task_error: str = "fail") -> None:
        self.on_task_error = validate_task_error_policy(on_task_error)

    def submit(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        telemetry.inc("backend_tasks_total", len(tasks), backend=self.name)
        for index, task in enumerate(tasks):
            if self.on_task_error == "fail":
                yield index, fn(task)
                continue
            try:
                result = fn(task)
            except Exception:
                result = TaskQuarantined(
                    index=index,
                    error=traceback.format_exc(),
                    attempts=1,
                    workers=("serial",),
                )
            yield index, result

    @property
    def is_serial(self) -> bool:
        return True
