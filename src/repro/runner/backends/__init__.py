"""Pluggable execution-backend registry for the experiment runner.

Backends are selected by name (mirroring the decoder-backend registry in
:mod:`repro.phy.turbo.backends`):

``serial``
    In-process execution, in submission order — the reference backend.
``process``
    A local :class:`concurrent.futures.ProcessPoolExecutor` round pool (the
    PR 1 ``ParallelRunner`` behaviour, extracted).
``socket``
    A stdlib-only TCP coordinator feeding ``python -m repro worker``
    daemons, with reconnect/retry and at-least-once de-duplication.

Because every work item is seeded by its sweep coordinates, all backends
produce **bit-identical results** for the same plan; the choice is pure
execution topology and is therefore excluded from the run identity (caches
and golden files never record it).  Additional families — an asyncio or an
MPI backend, say — plug in via :func:`register_execution_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.runner.backends.base import (
    TASK_ERROR_POLICIES,
    ExecutionBackend,
    TaskQuarantined,
    validate_task_error_policy,
)
from repro.runner.backends.process_pool import ProcessPoolBackend, default_workers
from repro.runner.backends.serial import SerialBackend
from repro.runner.backends.socket_backend import (
    WORKER_EXIT_FAILURE,
    WORKER_EXIT_LOST_COORDINATOR,
    WORKER_EXIT_OK,
    SocketDistributedBackend,
    run_worker,
)

#: The backend used when nothing is requested and ``workers <= 1``.
DEFAULT_BACKEND = "serial"
#: The backend implied by ``workers > 1`` when nothing else is requested.
DEFAULT_PARALLEL_BACKEND = "process"


def _make_serial(workers: int, mp_context: Optional[str], **options: object) -> ExecutionBackend:
    on_task_error = str(options.pop("on_task_error", "fail"))
    _reject_options("serial", options)
    return SerialBackend(on_task_error=on_task_error)


def _make_process(workers: int, mp_context: Optional[str], **options: object) -> ExecutionBackend:
    on_task_error = str(options.pop("on_task_error", "fail"))
    _reject_options("process", options)
    return ProcessPoolBackend(workers, mp_context=mp_context, on_task_error=on_task_error)


def _make_socket(workers: int, mp_context: Optional[str], **options: object) -> ExecutionBackend:
    return SocketDistributedBackend(workers, **options)  # type: ignore[arg-type]


def _reject_options(family: str, options: Dict[str, object]) -> None:
    if options:
        raise TypeError(
            f"execution backend {family!r} accepts no options, got {sorted(options)}"
        )


#: family -> factory(workers, mp_context, **options).
_FAMILIES: Dict[str, Callable[..., ExecutionBackend]] = {
    "serial": _make_serial,
    "process": _make_process,
    "socket": _make_socket,
}


def register_execution_backend(
    family: str, factory: Callable[..., ExecutionBackend]
) -> None:
    """Register an additional backend family (rejecting duplicates).

    The factory is called as ``factory(workers, mp_context, **options)`` and
    must return an :class:`ExecutionBackend`.
    """
    if family in _FAMILIES:
        raise ValueError(f"duplicate execution backend family {family!r}")
    _FAMILIES[family] = factory


def execution_backend_names() -> Tuple[str, ...]:
    """Every selectable execution-backend token."""
    return tuple(_FAMILIES)


def create_execution_backend(
    name: Union[str, ExecutionBackend],
    *,
    workers: int = 1,
    mp_context: Optional[str] = None,
    **options: object,
) -> ExecutionBackend:
    """Instantiate the named backend (pass-through for built instances)."""
    if isinstance(name, ExecutionBackend):
        return name
    token = str(name).strip().lower()
    try:
        factory = _FAMILIES[token]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"choose from {sorted(execution_backend_names())}"
        ) from None
    return factory(workers, mp_context, **options)


__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_PARALLEL_BACKEND",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SocketDistributedBackend",
    "TASK_ERROR_POLICIES",
    "TaskQuarantined",
    "WORKER_EXIT_FAILURE",
    "WORKER_EXIT_LOST_COORDINATOR",
    "WORKER_EXIT_OK",
    "create_execution_backend",
    "default_workers",
    "execution_backend_names",
    "register_execution_backend",
    "run_worker",
    "validate_task_error_policy",
]
