"""Socket-distributed execution: a TCP coordinator plus worker daemons.

The coordinator binds a TCP port, hands pickled work items to whichever
worker daemons (``python -m repro worker --connect HOST:PORT``) are
connected, and streams results back to the scheduler.  Delivery is
**at-least-once**: a work item whose worker connection dies is requeued for
another worker, and the per-round de-duplication in :meth:`submit` discards
late or duplicate deliveries by ``(round, index)`` — re-execution is safe
because every work item derives its random stream from its sweep
coordinates, so two executions of the same item produce identical bytes.

Topology therefore never leaks into results: a socket run is bit-identical
to a serial run of the same plan, which is exactly why the backend is kept
out of the run identity.

For single-machine use (CI, the conformance suite, quick sanity checks) the
coordinator can spawn ``local_workers`` daemons itself; for real
distribution, bind a routable address and start workers on other machines —
but note the wire format is pickle, so only trusted networks apply (see
:mod:`repro.runner.backends.wire`).
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runner.backends.base import ExecutionBackend
from repro.runner.backends.process_pool import default_workers
from repro.runner.backends.wire import parse_address, recv_message, send_message

#: How long dispatch/collection loops sleep between poll iterations (s).
_POLL_INTERVAL = 0.1


class _WorkerConnection:
    """Coordinator-side state of one connected worker daemon."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.alive = True
        #: Serialises frame writes (dispatcher vs. shutdown broadcast).
        self.send_lock = threading.Lock()
        #: Guards :attr:`outstanding`.
        self.lock = threading.Lock()
        #: Tasks sent but not yet answered, by ``(round, index)``.
        self.outstanding: Dict[Tuple[int, int], Tuple] = {}
        #: One credit per received reply; the dispatcher waits for a credit
        #: before sending the next task, so work is pulled, not pushed.
        self.credits = threading.Semaphore(0)

    def mark_dead(self) -> None:
        self.alive = False
        self.credits.release()  # wake a dispatcher blocked on the credit


class SocketDistributedBackend(ExecutionBackend):
    """Execute work items on TCP-connected worker daemons.

    Parameters
    ----------
    workers:
        Default number of locally spawned worker daemons when
        *local_workers* is not given (``0`` means one per CPU, matching the
        process backend's convention).
    bind:
        ``HOST:PORT`` the coordinator listens on.  Port ``0`` picks an
        ephemeral port (read it back from :attr:`address`).  The default
        binds loopback; bind a routable host only on trusted networks.
    local_workers:
        Worker daemons to spawn on this machine once the coordinator is up
        (``None`` -> *workers*).  ``0`` spawns nothing and waits for
        external workers to connect.
    worker_timeout:
        Seconds :meth:`submit` tolerates having no connected worker (while
        work is pending) before raising.
    """

    name = "socket"

    def __init__(
        self,
        workers: int = 1,
        *,
        bind: str = "127.0.0.1:0",
        local_workers: Optional[int] = None,
        worker_timeout: float = 120.0,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if local_workers is None:
            # workers=0 means "auto" everywhere else; for local spawning that
            # is one daemon per CPU.
            local_workers = workers if workers > 0 else default_workers()
        if local_workers < 0:
            raise ValueError(f"local_workers must be non-negative, got {local_workers}")
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {worker_timeout}")
        self.bind_host, self.bind_port = parse_address(bind)
        self.local_workers = int(local_workers)
        self.worker_timeout = float(worker_timeout)

        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[_WorkerConnection] = []
        self._connections_lock = threading.Lock()
        self._task_queue: "queue.Queue[Tuple]" = queue.Queue()
        self._results: "queue.Queue[Tuple[str, int, int, Any]]" = queue.Queue()
        self._round = 0
        self._collecting = False
        self._closing = False
        self._last_activity = time.monotonic()
        self._local_procs: List[subprocess.Popen] = []
        self._stderr_dir: Optional[tempfile.TemporaryDirectory] = None

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        """The coordinator's bound ``HOST:PORT`` (starts it if needed)."""
        self._ensure_started()
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def connected_workers(self) -> int:
        """Number of currently connected worker daemons."""
        with self._connections_lock:
            return sum(1 for conn in self._connections if conn.alive)

    # ------------------------------------------------------------------ #
    def submit(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        tasks = list(tasks)
        if not tasks:
            return iter(())
        self._ensure_started()
        return self._run_round(fn, tasks)

    def _run_round(
        self, fn: Callable[[Any], Any], tasks: List[Any]
    ) -> Iterator[Tuple[int, Any]]:
        """Enqueue one round and yield its de-duplicated results.

        Everything — the one-round-at-a-time check, the round id bump, the
        enqueue — happens lazily when the stream is first consumed, so a
        stream that is created but never started holds no backend state
        (dropping it cannot wedge later rounds).
        """
        if self._collecting:
            # Starting a new round abandons the previous one (its tasks are
            # dropped at dispatch, its replies at collection), which would
            # leave the old stream waiting forever — refuse instead.
            raise RuntimeError(
                "a previous round is still being collected; exhaust or close "
                "its stream before submitting another (one round at a time)"
            )
        self._collecting = True
        try:
            self._round += 1
            round_id = self._round
            self._last_activity = time.monotonic()
            for index, task in enumerate(tasks):
                self._task_queue.put((round_id, index, fn, task))
            done: set = set()
            while len(done) < len(tasks):
                try:
                    kind, reply_round, index, value = self._results.get(
                        timeout=_POLL_INTERVAL
                    )
                except queue.Empty:
                    self._check_liveness()
                    continue
                self._last_activity = time.monotonic()
                if reply_round != round_id or index in done:
                    continue  # stale round or duplicate delivery (at-least-once)
                if kind == "error":
                    raise RuntimeError(
                        f"work item {index} failed on a remote worker:\n{value}"
                    )
                done.add(index)
                yield index, value
        finally:
            # Invalidate whatever is still queued or in flight from this
            # round — dispatchers drop stale tasks, collectors stale replies
            # — so an errored or abandoned round does not keep burning
            # workers on items nobody will read.
            self._round += 1
            self._collecting = False

    def _check_liveness(self) -> None:
        """Raise when pending work can no longer make progress."""
        if self.connected_workers() > 0:
            return
        if self._local_procs and all(p.poll() is not None for p in self._local_procs):
            raise RuntimeError(
                "all local worker daemons exited while work was pending:\n"
                + self._local_worker_diagnostics()
            )
        if time.monotonic() - self._last_activity > self.worker_timeout:
            raise RuntimeError(
                f"no worker connected to {self.address} for "
                f"{self.worker_timeout:.0f}s with work pending"
            )

    def _local_worker_diagnostics(self) -> str:
        lines = []
        for proc_index, proc in enumerate(self._local_procs):
            tail = ""
            if self._stderr_dir is not None:
                log = Path(self._stderr_dir.name) / f"worker-{proc_index}.log"
                if log.exists():
                    tail = log.read_text()[-2000:]
            lines.append(f"worker {proc_index}: exit={proc.poll()}\n{tail}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    def _ensure_started(self) -> None:
        if self._closing:
            raise RuntimeError("backend is closed")
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, self.bind_port))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        if self.local_workers:
            self._spawn_local_workers()

    def _spawn_local_workers(self) -> None:
        self._stderr_dir = tempfile.TemporaryDirectory(prefix="repro-workers-")
        env = os.environ.copy()
        # Local daemons must unpickle whatever module-level task functions
        # the parent can reference (fork-based pool workers inherit sys.path
        # wholesale), so replicate the parent's import environment.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        for worker_index in range(self.local_workers):
            log_path = Path(self._stderr_dir.name) / f"worker-{worker_index}.log"
            with open(log_path, "wb") as log:
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        self.address,
                        "--connect-retries",
                        "40",
                        "--retry-delay",
                        "0.25",
                    ],
                    env=env,
                    stdout=log,
                    stderr=subprocess.STDOUT,
                )
            self._local_procs.append(proc)

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConnection(sock, f"{peer[0]}:{peer[1]}")
            threading.Thread(
                target=self._handshake, args=(conn,), daemon=True,
                name=f"repro-worker-{conn.peer}",
            ).start()

    def _handshake(self, conn: _WorkerConnection) -> None:
        try:
            hello = recv_message(conn.sock)
        except (ConnectionError, OSError, ValueError, EOFError):
            conn.sock.close()
            return
        if not hello or hello[0] != "hello":
            conn.sock.close()
            return
        with self._connections_lock:
            self._connections.append(conn)
        self._last_activity = time.monotonic()
        threading.Thread(
            target=self._read_loop, args=(conn,), daemon=True,
            name=f"repro-reader-{conn.peer}",
        ).start()
        self._dispatch_loop(conn)

    def _read_loop(self, conn: _WorkerConnection) -> None:
        """Forward every reply frame of one worker to the result queue."""
        try:
            while True:
                message = recv_message(conn.sock)
                if message[0] in ("result", "error"):
                    _kind, round_id, index, value = message
                    with conn.lock:
                        conn.outstanding.pop((round_id, index), None)
                    self._results.put((message[0], round_id, index, value))
                    conn.credits.release()
                # anything else (stray hello, unknown type) is ignored
        except Exception:
            # EOF, reset, or a corrupt frame: the dispatcher requeues this
            # worker's unanswered tasks for at-least-once redelivery.
            conn.mark_dead()

    def _dispatch_loop(self, conn: _WorkerConnection) -> None:
        """Feed one worker: send a task, wait for its reply credit, repeat."""
        try:
            while not self._closing and conn.alive:
                try:
                    item = self._task_queue.get(timeout=_POLL_INTERVAL)
                except queue.Empty:
                    continue
                round_id, index, fn, task = item
                if round_id != self._round:
                    continue  # task from an abandoned round
                with conn.lock:
                    conn.outstanding[(round_id, index)] = item
                try:
                    with conn.send_lock:
                        send_message(conn.sock, ("task", round_id, index, fn, task))
                except OSError:
                    conn.mark_dead()
                    break
                while not conn.credits.acquire(timeout=_POLL_INTERVAL):
                    if self._closing or not conn.alive:
                        break
        finally:
            self._retire(conn)

    def _retire(self, conn: _WorkerConnection) -> None:
        """Requeue a dead worker's unanswered tasks and forget it."""
        conn.alive = False
        with conn.lock:
            outstanding = list(conn.outstanding.items())
            conn.outstanding.clear()
        for (round_id, _index), item in outstanding:
            if round_id == self._round and not self._closing:
                self._task_queue.put(item)  # at-least-once redelivery
        with self._connections_lock:
            if conn in self._connections:
                self._connections.remove(conn)
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closing:
            return
        self._closing = True
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                with conn.send_lock:
                    send_message(conn.sock, ("shutdown",))
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._local_procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        self._local_procs.clear()
        if self._stderr_dir is not None:
            self._stderr_dir.cleanup()
            self._stderr_dir = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SocketDistributedBackend(bind={self.bind_host}:{self.bind_port}, "
            f"local_workers={self.local_workers})"
        )


# --------------------------------------------------------------------------- #
# worker daemon (the ``python -m repro worker`` entry point)
# --------------------------------------------------------------------------- #
def run_worker(
    address: str,
    *,
    connect_retries: int = 40,
    retry_delay: float = 0.5,
    once: bool = False,
    log: Callable[[str], None] = lambda line: print(line, file=sys.stderr, flush=True),
) -> int:
    """Serve work items from a coordinator until it shuts the run down.

    The daemon connects (retrying up to *connect_retries* times, *retry_delay*
    seconds apart — so it can be started before the coordinator), executes
    each received work item with its shipped task function and streams the
    result back.  On a dropped connection it reconnects and keeps serving
    (unless *once* is set); on a ``shutdown`` message it exits cleanly.

    Returns a process exit code: ``0`` after a clean shutdown or after
    serving at least one item, ``1`` if it never managed to connect.
    """
    host, port = parse_address(address)
    if connect_retries < 1:
        raise ValueError(f"connect_retries must be positive, got {connect_retries}")
    if retry_delay < 0:
        raise ValueError(f"retry_delay must be non-negative, got {retry_delay}")
    served = 0
    while True:
        sock = _connect_with_retry(host, port, connect_retries, retry_delay, log)
        if sock is None:
            log(f"repro worker: giving up on {address} after {connect_retries} attempts")
            return 0 if served else 1
        log(f"repro worker: connected to {address} (pid {os.getpid()})")
        try:
            send_message(sock, ("hello", os.getpid()))
            while True:
                message = recv_message(sock)
                if message[0] == "shutdown":
                    log("repro worker: coordinator finished; exiting")
                    return 0
                if message[0] != "task":
                    continue
                _kind, round_id, index, fn, task = message
                try:
                    reply = ("result", round_id, index, fn(task))
                except Exception:
                    reply = ("error", round_id, index, traceback.format_exc())
                send_message(sock, reply)
                served += 1
        except (ConnectionError, OSError):
            log("repro worker: connection lost")
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
            if once:
                return 0
            # fall through: reconnect for the coordinator's next round
        except Exception:
            # A frame we cannot even unpickle (version-skewed checkout, a
            # task function that does not resolve here, corrupt stream) is
            # deterministic: reconnecting would just die again on the
            # redelivered task.  Log the real cause and exit non-zero so the
            # coordinator's local-worker diagnostics surface it.
            log(f"repro worker: fatal protocol error:\n{traceback.format_exc()}")
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
            return 1


def _connect_with_retry(
    host: str,
    port: int,
    retries: int,
    delay: float,
    log: Callable[[str], None],
) -> Optional[socket.socket]:
    for attempt in range(retries):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if attempt + 1 < retries:
                time.sleep(delay)
    return None
