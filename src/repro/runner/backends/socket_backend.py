"""Socket-distributed execution: a TCP coordinator plus worker daemons.

The coordinator binds a TCP port, hands pickled work items to whichever
worker daemons (``python -m repro worker --connect HOST:PORT``) are
connected, and streams results back to the scheduler.  Delivery is
**at-least-once**: a work item whose worker connection dies is requeued for
another worker, and the per-round de-duplication in :meth:`submit` discards
late or duplicate deliveries by ``(round, index)`` — re-execution is safe
because every work item derives its random stream from its sweep
coordinates, so two executions of the same item produce identical bytes.

Topology therefore never leaks into results: a socket run is bit-identical
to a serial run of the same plan, which is exactly why the backend is kept
out of the run identity.

For single-machine use (CI, the conformance suite, quick sanity checks) the
coordinator can spawn ``local_workers`` daemons itself; for real
distribution, bind a routable address and start workers on other machines —
but note the wire format is pickle, so only trusted networks apply (see
:mod:`repro.runner.backends.wire`).
"""

from __future__ import annotations

import os
import queue
import random
import select
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.runner import chaos, telemetry
from repro.runner.backends.base import (
    ExecutionBackend,
    TaskQuarantined,
    validate_task_error_policy,
)
from repro.runner.backends.process_pool import default_workers
from repro.runner.backends.wire import (
    format_address,
    parse_address,
    recv_message,
    send_message,
)

#: How long dispatch/collection loops sleep between poll iterations (s).
_POLL_INTERVAL = 0.1

#: How often a draining-capable worker wakes from its socket wait to check
#: whether a SIGTERM drain was requested (s).
_DRAIN_POLL = 0.2

#: Ceiling on one reconnect backoff sleep (s): ``retry_delay`` doubles per
#: attempt up to this cap, then a deterministic 0.5x-1.5x jitter is applied.
RECONNECT_BACKOFF_CAP = 5.0

#: Worker-daemon exit codes (``python -m repro worker``).  Supervisors key
#: restart policy off these: a lost coordinator is worth retrying, a daemon
#: that never connected or hit a fatal protocol error usually is not.
WORKER_EXIT_OK = 0  # received ("shutdown",): the run finished cleanly
WORKER_EXIT_FAILURE = 1  # never connected, or a fatal protocol error
WORKER_EXIT_LOST_COORDINATOR = 2  # connected once, then lost the coordinator


class _WorkerConnection:
    """Coordinator-side state of one connected worker daemon."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.alive = True
        #: Serialises frame writes (dispatcher vs. shutdown broadcast).
        self.send_lock = threading.Lock()
        #: Guards :attr:`outstanding`.
        self.lock = threading.Lock()
        #: Tasks sent but not yet answered: ``(round, index) -> (item, sent_at)``.
        self.outstanding: Dict[Tuple[int, int], Tuple[Tuple, float]] = {}
        #: In-flight capacity: the handshake deposits one credit per slot the
        #: worker advertised, the dispatcher acquires a credit before every
        #: send and the read loop releases one per reply — so an 8-slot
        #: worker holds up to 8 unanswered items while a 1-slot worker holds
        #: 1, and work stays pulled, never pushed.
        self.credits = threading.Semaphore(0)
        #: Slot count the worker advertised in its hello (legacy hellos -> 1).
        self.slots = 1
        #: Whether this connection came from a daemon this coordinator
        #: spawned itself (matched by hello pid) — drives liveness policy.
        self.is_local = False
        #: Monotonic time of the last frame received from this worker
        #: (results, errors and heartbeats all count as liveness).
        self.last_frame = time.monotonic()
        #: Heartbeat cadence the worker advertised in its hello, or ``None``
        #: for workers that do not heartbeat (staleness is then not enforced,
        #: keeping long-running tasks on legacy daemons safe).
        self.heartbeat_interval: Optional[float] = None

    def mark_dead(self) -> None:
        self.alive = False
        self.credits.release()  # wake a dispatcher blocked on the credit


class SocketDistributedBackend(ExecutionBackend):
    """Execute work items on TCP-connected worker daemons.

    Parameters
    ----------
    workers:
        Default number of locally spawned worker daemons when
        *local_workers* is not given (``0`` means one per CPU, matching the
        process backend's convention).
    bind:
        ``HOST:PORT`` the coordinator listens on.  Port ``0`` picks an
        ephemeral port (read it back from :attr:`address`).  The default
        binds loopback; bind a routable host only on trusted networks.
    local_workers:
        Worker daemons to spawn on this machine once the coordinator is up
        (``None`` -> *workers*).  ``0`` spawns nothing and waits for
        external workers to connect.
    worker_timeout:
        Seconds :meth:`submit` tolerates having no connected worker (while
        work is pending) before raising.
    task_timeout:
        Optional per-task deadline in seconds: a dispatched work item whose
        reply has not arrived within this window marks its worker dead and
        is preemptively requeued to another worker (at-least-once
        semantics make the re-execution safe).  ``None`` disables the
        deadline — the right default when task durations are unbounded.
    heartbeat_timeout:
        Seconds without *any* frame (result or heartbeat) from a worker
        that advertised heartbeating before it is declared hung and its
        outstanding tasks requeued.  ``None`` derives the window from the
        worker's advertised cadence (several missed beats); an explicit
        value is floored at two of the worker's advertised beat intervals
        (a window shorter than the cadence would retire healthy workers);
        workers that never advertise heartbeats are exempt.
    worker_slots:
        ``--slots`` value for locally spawned daemons: how many work items
        each daemon executes concurrently (and therefore how many credits
        it holds with the coordinator).  ``1`` keeps the one-at-a-time
        daemon; ``0`` lets each daemon size itself to its own CPU count.
        External workers advertise their own slot count in their hello and
        are unaffected by this option.
    on_task_error:
        Policy for a work item whose *task code* raised on a worker (as
        opposed to the worker dying, which requeues indefinitely):
        ``"fail"`` (default) aborts the round with the remote traceback
        once the retry budget is spent; ``"quarantine"`` yields a
        :class:`TaskQuarantined` sentinel for that index and lets the rest
        of the round complete.
    task_attempts:
        Retry budget for task-raised errors: the item is redispatched —
        preferring workers that have not failed it yet — until this many
        attempts have raised, then the ``on_task_error`` policy applies.
        ``1`` (default) applies the policy on the first raise.
    """

    name = "socket"

    #: Missed-beat multiple used when *heartbeat_timeout* is derived.
    HEARTBEAT_TIMEOUT_BEATS = 4.0
    #: Floor on the derived heartbeat timeout (absorbs scheduling jitter).
    MIN_HEARTBEAT_TIMEOUT = 5.0

    def __init__(
        self,
        workers: int = 1,
        *,
        bind: str = "127.0.0.1:0",
        local_workers: Optional[int] = None,
        worker_timeout: float = 120.0,
        task_timeout: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        worker_slots: int = 1,
        on_task_error: str = "fail",
        task_attempts: int = 1,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if local_workers is None:
            # workers=0 means "auto" everywhere else; for local spawning that
            # is one daemon per CPU.
            local_workers = workers if workers > 0 else default_workers()
        if local_workers < 0:
            raise ValueError(f"local_workers must be non-negative, got {local_workers}")
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {worker_timeout}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if worker_slots < 0:
            raise ValueError(f"worker_slots must be non-negative, got {worker_slots}")
        if task_attempts < 1:
            raise ValueError(f"task_attempts must be positive, got {task_attempts}")
        self.on_task_error = validate_task_error_policy(on_task_error)
        self.task_attempts = int(task_attempts)
        self.bind_host, self.bind_port = parse_address(bind)
        self.local_workers = int(local_workers)
        self.worker_slots = int(worker_slots)
        self.worker_timeout = float(worker_timeout)
        self.task_timeout = None if task_timeout is None else float(task_timeout)
        self.heartbeat_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )

        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[_WorkerConnection] = []
        self._connections_lock = threading.Lock()
        self._task_queue: "queue.Queue[Tuple]" = queue.Queue()
        self._results: "queue.Queue[Tuple[str, int, int, Any]]" = queue.Queue()
        self._round = 0
        self._collecting = False
        self._closing = False
        #: Per-item task-error bookkeeping for the round being collected:
        #: ``(round, index) -> {"attempts": int, "peers": [str, ...]}``.
        #: Owned by the collector thread; cleared when the round ends.
        self._task_error_state: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: ``(round, index) -> peers that already failed it`` — read by the
        #: dispatcher threads to steer a retried item toward a worker that
        #: has not raised on it yet (the "K *distinct* workers" budget).
        self._failed_peers: Dict[Tuple[int, int], "frozenset[str]"] = {}
        self._last_activity = time.monotonic()
        self._local_procs: List[subprocess.Popen] = []
        self._stderr_dir: Optional[tempfile.TemporaryDirectory] = None
        #: Set once any non-local worker has connected: from then on,
        #: local-daemon death alone must not abort a run — the external
        #: fleet may reconnect within ``worker_timeout``.
        self._external_seen = False

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        """The coordinator's bound ``HOST:PORT`` (starts it if needed)."""
        self._ensure_started()
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        return format_address(host, port)

    def connected_workers(self) -> int:
        """Number of currently connected worker daemons."""
        with self._connections_lock:
            return sum(1 for conn in self._connections if conn.alive)

    # ------------------------------------------------------------------ #
    def submit(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        tasks = list(tasks)
        if not tasks:
            return iter(())
        telemetry.inc("backend_tasks_total", len(tasks), backend=self.name)
        self._ensure_started()
        return self._run_round(fn, tasks)

    def _run_round(
        self, fn: Callable[[Any], Any], tasks: List[Any]
    ) -> Iterator[Tuple[int, Any]]:
        """Enqueue one round and yield its de-duplicated results.

        Everything — the one-round-at-a-time check, the round id bump, the
        enqueue — happens lazily when the stream is first consumed, so a
        stream that is created but never started holds no backend state
        (dropping it cannot wedge later rounds).
        """
        if self._collecting:
            # Starting a new round abandons the previous one (its tasks are
            # dropped at dispatch, its replies at collection), which would
            # leave the old stream waiting forever — refuse instead.
            raise RuntimeError(
                "a previous round is still being collected; exhaust or close "
                "its stream before submitting another (one round at a time)"
            )
        self._collecting = True
        try:
            self._round += 1
            round_id = self._round
            self._last_activity = time.monotonic()
            for index, task in enumerate(tasks):
                self._task_queue.put((round_id, index, fn, task))
            done: set = set()
            while len(done) < len(tasks):
                try:
                    kind, reply_round, index, value = self._results.get(
                        timeout=_POLL_INTERVAL
                    )
                except queue.Empty:
                    self._check_liveness()
                    continue
                self._last_activity = time.monotonic()
                if reply_round != round_id or index in done:
                    # stale round or duplicate delivery (at-least-once)
                    telemetry.inc("backend_duplicate_replies_total")
                    continue
                if kind == "error":
                    # The *task code* raised over there — a different animal
                    # from the worker dying (which requeues silently and
                    # indefinitely).  Spend the retry budget on other
                    # workers first; then apply the on_task_error policy.
                    tb, item, peer = value
                    key = (round_id, index)
                    state = self._task_error_state.setdefault(
                        key, {"attempts": 0, "peers": []}
                    )
                    state["attempts"] += 1
                    if peer and peer not in state["peers"]:
                        state["peers"].append(peer)
                    if item is not None and state["attempts"] < self.task_attempts:
                        self._failed_peers[key] = frozenset(state["peers"])
                        self._task_queue.put(item)
                        continue
                    if self.on_task_error == "quarantine":
                        done.add(index)
                        yield index, TaskQuarantined(
                            index=index,
                            error=tb,
                            attempts=state["attempts"],
                            workers=tuple(state["peers"]),
                        )
                        continue
                    raise RuntimeError(
                        f"work item {index} failed on a remote worker "
                        f"(attempt {state['attempts']} of {self.task_attempts}):\n{tb}"
                    )
                done.add(index)
                yield index, value
        finally:
            # Invalidate whatever is still queued or in flight from this
            # round — dispatchers drop stale tasks, collectors stale replies
            # — so an errored or abandoned round does not keep burning
            # workers on items nobody will read.
            self._round += 1
            self._collecting = False
            self._task_error_state.clear()
            self._failed_peers.clear()

    def _check_liveness(self) -> None:
        """Raise when pending work can no longer make progress."""
        if self.connected_workers() > 0:
            return
        all_local_dead = self._local_procs and all(
            p.poll() is not None for p in self._local_procs
        )
        # Fail fast on local-daemon death only when local daemons supplied
        # the whole fleet.  Once an external worker has connected, its
        # reconnect window is worker_timeout — aborting the run because the
        # *local* helpers died would strand a healthy external fleet.
        if all_local_dead and not self._external_seen:
            raise RuntimeError(
                "all local worker daemons exited while work was pending:\n"
                + self._local_worker_diagnostics()
            )
        if time.monotonic() - self._last_activity > self.worker_timeout:
            message = (
                f"no worker connected to {self.address} for "
                f"{self.worker_timeout:.0f}s with work pending"
            )
            if all_local_dead:
                message += (
                    "\nlocal worker daemons also exited:\n"
                    + self._local_worker_diagnostics()
                )
            raise RuntimeError(message)

    def _local_worker_diagnostics(self) -> str:
        lines = []
        for proc_index, proc in enumerate(self._local_procs):
            tail = ""
            if self._stderr_dir is not None:
                log = Path(self._stderr_dir.name) / f"worker-{proc_index}.log"
                if log.exists():
                    tail = log.read_text()[-2000:]
            lines.append(f"worker {proc_index}: exit={proc.poll()}\n{tail}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    def _ensure_started(self) -> None:
        if self._closing:
            raise RuntimeError("backend is closed")
        if self._listener is not None:
            return
        family = socket.AF_INET6 if ":" in self.bind_host else socket.AF_INET
        listener = socket.socket(family, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, self.bind_port))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        if self.local_workers:
            self._spawn_local_workers()

    def _spawn_local_workers(self) -> None:
        self._stderr_dir = tempfile.TemporaryDirectory(prefix="repro-workers-")
        env = os.environ.copy()
        # Local daemons must unpickle whatever module-level task functions
        # the parent can reference (fork-based pool workers inherit sys.path
        # wholesale), so replicate the parent's import environment.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        for worker_index in range(self.local_workers):
            log_path = Path(self._stderr_dir.name) / f"worker-{worker_index}.log"
            with open(log_path, "wb") as log:
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        self.address,
                        "--connect-retries",
                        "40",
                        "--retry-delay",
                        "0.25",
                        "--slots",
                        str(self.worker_slots),
                    ],
                    env=env,
                    stdout=log,
                    stderr=subprocess.STDOUT,
                )
            self._local_procs.append(proc)

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConnection(sock, f"{peer[0]}:{peer[1]}")
            threading.Thread(
                target=self._handshake, args=(conn,), daemon=True,
                name=f"repro-worker-{conn.peer}",
            ).start()

    def _handshake(self, conn: _WorkerConnection) -> None:
        try:
            hello = recv_message(conn.sock)
        except (ConnectionError, OSError, ValueError, EOFError):
            conn.sock.close()
            return
        if not hello or hello[0] != "hello":
            conn.sock.close()
            return
        # ("hello", pid) is the legacy form; ("hello", pid, info) advertises
        # capabilities — the heartbeat cadence (opting the worker into
        # staleness enforcement) and its slot count (how many work items it
        # executes concurrently, i.e. how many credits it holds).
        if len(hello) >= 3 and isinstance(hello[2], dict):
            interval = hello[2].get("heartbeat_interval")
            if interval:
                conn.heartbeat_interval = float(interval)
            slots = hello[2].get("slots")
            if slots:
                conn.slots = max(1, int(slots))
        local_pids = {proc.pid for proc in self._local_procs}
        conn.is_local = len(hello) >= 2 and hello[1] in local_pids
        if not conn.is_local:
            self._external_seen = True
        conn.last_frame = time.monotonic()
        with self._connections_lock:
            self._connections.append(conn)
        self._last_activity = time.monotonic()
        telemetry.inc("backend_worker_connects_total", worker=conn.peer)
        telemetry.set_gauge("backend_connected_workers", self.connected_workers())
        # Fund the credit pool: one credit per advertised slot.  The
        # dispatcher debits a credit before each send and the read loop
        # refunds one per reply, capping in-flight items at the slot count.
        for _ in range(conn.slots):
            conn.credits.release()
        threading.Thread(
            target=self._read_loop, args=(conn,), daemon=True,
            name=f"repro-reader-{conn.peer}",
        ).start()
        self._dispatch_loop(conn)

    def _read_loop(self, conn: _WorkerConnection) -> None:
        """Forward every reply frame of one worker to the result queue."""
        try:
            while True:
                message = recv_message(conn.sock)
                conn.last_frame = time.monotonic()
                if message[0] in ("result", "error"):
                    _kind, round_id, index, value = message
                    with conn.lock:
                        entry = conn.outstanding.pop((round_id, index), None)
                    if message[0] == "error":
                        # Ship the original work item and the failing peer
                        # along so the collector can redispatch it within
                        # the retry budget (the entry is None only for a
                        # reply to a task this coordinator never sent).
                        item = entry[0] if entry is not None else None
                        value = (value, item, conn.peer)
                    self._results.put((message[0], round_id, index, value))
                    conn.credits.release()
                elif message[0] == "goodbye":
                    # The worker drained (SIGTERM): it finished and answered
                    # everything it had in flight, so this is a clean
                    # retirement, not a failure — no outstanding items to
                    # requeue, no diagnostics to keep.
                    conn.mark_dead()
                    return
                elif message[0] == "heartbeat":
                    telemetry.inc("backend_heartbeats_total", worker=conn.peer)
                # anything else (stray hello, unknown type) only refreshes
                # the liveness timestamp above
        except Exception:
            # EOF, reset, or a corrupt frame: the dispatcher requeues this
            # worker's unanswered tasks for at-least-once redelivery.
            conn.mark_dead()

    def _connection_hung(self, conn: _WorkerConnection) -> Optional[str]:
        """Why this worker should be declared hung, or ``None`` if healthy.

        Two independent detectors, both of which requeue the worker's
        outstanding tasks *before* the coordinator-level liveness timeout
        would give up on the whole run:

        * per-task deadline — a dispatched item unanswered for longer than
          ``task_timeout``;
        * heartbeat staleness — no frame at all for longer than
          ``heartbeat_timeout`` from a worker that advertised a heartbeat
          cadence (workers that never heartbeat are exempt, so legacy
          daemons with long tasks are not killed mid-compute).
        """
        now = time.monotonic()
        if self.task_timeout is not None:
            with conn.lock:
                oldest = min(
                    (sent_at for _item, sent_at in conn.outstanding.values()),
                    default=None,
                )
            if oldest is not None and now - oldest > self.task_timeout:
                return f"task unanswered for {self.task_timeout:.1f}s"
        if conn.heartbeat_interval is not None:
            window = self.heartbeat_timeout
            if window is None:
                window = max(
                    self.HEARTBEAT_TIMEOUT_BEATS * conn.heartbeat_interval,
                    self.MIN_HEARTBEAT_TIMEOUT,
                )
            # An explicit timeout is floored at two of the worker's own
            # advertised beat intervals — a window shorter than the cadence
            # would retire perfectly healthy workers between beats.
            window = max(window, 2.0 * conn.heartbeat_interval)
            if now - conn.last_frame > window:
                return f"no heartbeat for {window:.1f}s"
        return None

    def _dispatch_loop(self, conn: _WorkerConnection) -> None:
        """Feed one worker up to its advertised slot count of in-flight items.

        Each iteration debits one credit, takes one task and sends it; the
        read loop refunds the credit when the reply lands.  A fully loaded
        worker therefore parks the dispatcher on the credit acquire (with a
        poll timeout so the hung detectors keep running), while an idle
        multi-slot worker is fed back-to-back tasks without waiting for
        replies — that is the capacity weighting.
        """
        try:
            while not self._closing and conn.alive:
                hung_reason = self._connection_hung(conn)
                if hung_reason:
                    # Preemptive requeue: don't wait for the socket to die —
                    # retire the worker now so others pick its items up
                    # (at-least-once redelivery).
                    telemetry.inc("backend_hung_retires_total", worker=conn.peer)
                    telemetry.event(
                        "worker-hung", worker=conn.peer, reason=hung_reason
                    )
                    conn.mark_dead()
                    break
                if not conn.credits.acquire(timeout=_POLL_INTERVAL):
                    # All slots busy: the dispatcher parks on the empty
                    # credit pool (this is the capacity weighting working).
                    telemetry.inc("backend_credit_waits_total", worker=conn.peer)
                    continue  # re-check the hung detectors
                if self._closing or not conn.alive:
                    break
                try:
                    item = self._task_queue.get(timeout=_POLL_INTERVAL)
                except queue.Empty:
                    conn.credits.release()  # nothing to send; refund the slot
                    continue
                round_id, index, fn, task = item
                if round_id != self._round:
                    conn.credits.release()
                    continue  # task from an abandoned round
                failed = self._failed_peers.get((round_id, index))
                if failed and conn.peer in failed:
                    # This worker already raised on this item; hand it to a
                    # worker that has not, as long as one is alive (if the
                    # whole fleet has failed it, retry here anyway rather
                    # than starve the item).
                    with self._connections_lock:
                        alternative = any(
                            c.alive and c.peer not in failed
                            for c in self._connections
                        )
                    if alternative:
                        self._task_queue.put(item)
                        conn.credits.release()
                        time.sleep(_POLL_INTERVAL / 2)  # let the other grab it
                        continue
                with conn.lock:
                    conn.outstanding[(round_id, index)] = (item, time.monotonic())
                try:
                    with conn.send_lock:
                        send_message(conn.sock, ("task", round_id, index, fn, task))
                except OSError:
                    conn.mark_dead()
                    break
                telemetry.inc("backend_dispatch_total", worker=conn.peer)
        finally:
            self._retire(conn)

    def _retire(self, conn: _WorkerConnection) -> None:
        """Requeue a dead worker's whole outstanding set and forget it.

        A multi-slot worker can die holding several unanswered items; every
        one of them goes back on the queue (at-least-once), not just the
        most recent send.
        """
        conn.alive = False
        with conn.lock:
            outstanding = list(conn.outstanding.items())
            conn.outstanding.clear()
        for (round_id, _index), (item, _sent_at) in outstanding:
            if round_id == self._round and not self._closing:
                self._task_queue.put(item)  # at-least-once redelivery
                telemetry.inc("backend_redeliveries_total", worker=conn.peer)
        with self._connections_lock:
            if conn in self._connections:
                self._connections.remove(conn)
        telemetry.set_gauge("backend_connected_workers", self.connected_workers())
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closing:
            return
        self._closing = True
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                with conn.send_lock:
                    send_message(conn.sock, ("shutdown",))
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._local_procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        self._local_procs.clear()
        if self._stderr_dir is not None:
            self._stderr_dir.cleanup()
            self._stderr_dir = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SocketDistributedBackend(bind={self.bind_host}:{self.bind_port}, "
            f"local_workers={self.local_workers})"
        )


# --------------------------------------------------------------------------- #
# worker daemon (the ``python -m repro worker`` entry point)
# --------------------------------------------------------------------------- #
#: Default worker heartbeat cadence (seconds between beats).
DEFAULT_HEARTBEAT_INTERVAL = 2.0


class _FrameSender:
    """The one sanctioned way to write frames from a worker daemon.

    Every worker-side send — hello, heartbeat, result, error, goodbye —
    goes through :meth:`send`, which holds the per-socket lock for the
    whole frame write.  The lock exists because the heartbeat thread and
    the slot-pool result threads share one TCP stream: two interleaved
    ``sendall`` calls would splice their frames together, and the
    coordinator's read loop would see a corrupt frame, kill the connection
    and silently requeue everything in flight.  Funnelling all sends
    through this class makes "forgot the lock" unrepresentable.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()

    def send(self, message: Tuple[Any, ...]) -> None:
        with self._lock:
            send_message(self._sock, message)


class _InFlight:
    """Counter of work items currently executing on this worker.

    A draining worker (SIGTERM) uses :meth:`wait_idle` to finish what it
    already accepted before saying goodbye; with ``slots > 1`` several
    items can be in flight at once, so a bare flag would not do.
    """

    def __init__(self) -> None:
        self._count = 0
        self._cond = threading.Condition()

    def enter(self) -> None:
        with self._cond:
            self._count += 1

    def exit(self) -> None:
        with self._cond:
            self._count -= 1
            self._cond.notify_all()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self._count == 0, timeout)


def _start_heartbeat(sender: _FrameSender, interval: float) -> threading.Event:
    """Send ``("heartbeat",)`` frames every *interval* seconds until stopped.

    The beats run on a background thread so they keep flowing while the
    main loop is busy computing a work item — that is the whole point: the
    coordinator can tell a *hung* daemon (silence) from a *busy* one
    (heartbeats but no result yet).  Returns the stop event.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                sender.send(("heartbeat",))
            except OSError:
                return  # connection is gone; the main loop handles it

    threading.Thread(target=beat, name="repro-worker-heartbeat", daemon=True).start()
    return stop


def _serve_item(
    sender: _FrameSender,
    round_id: int,
    index: int,
    fn: Callable[[Any], Any],
    task: Any,
    in_flight: Optional[_InFlight] = None,
) -> None:
    """Execute one work item and stream its reply (slot-pool entry point).

    Send failures are swallowed here: when the connection dies mid-reply the
    daemon's receive loop sees the same broken socket and runs the normal
    reconnect path, and the coordinator requeues the item anyway.  The
    caller :meth:`_InFlight.enter`\\ s *before* handing the item over (so a
    drain request can never slip between accept and execute); this function
    owns the matching exit.
    """
    try:
        try:
            reply = ("result", round_id, index, fn(task))
        except Exception:
            reply = ("error", round_id, index, traceback.format_exc())
        try:
            sender.send(reply)
        except OSError:
            pass
    finally:
        if in_flight is not None:
            in_flight.exit()


def run_worker(
    address: str,
    *,
    connect_retries: int = 40,
    retry_delay: float = 0.5,
    once: bool = False,
    heartbeat_interval: Optional[float] = DEFAULT_HEARTBEAT_INTERVAL,
    slots: int = 1,
    drain: Optional[threading.Event] = None,
    log: Callable[[str], None] = lambda line: print(line, file=sys.stderr, flush=True),
) -> int:
    """Serve work items from a coordinator until it shuts the run down.

    The daemon connects (retrying up to *connect_retries* times, *retry_delay*
    seconds apart — so it can be started before the coordinator), executes
    each received work item with its shipped task function and streams the
    result back, heartbeating every *heartbeat_interval* seconds from a
    background thread (``None`` or ``0`` disables heartbeats and opts out of
    the coordinator's staleness enforcement).  On a dropped connection it
    reconnects and keeps serving (unless *once* is set); on a ``shutdown``
    message it exits cleanly.

    *slots* is the daemon's advertised capacity: the coordinator keeps up to
    that many work items in flight here, and a daemon with ``slots > 1``
    executes them concurrently on a thread pool.  ``0`` means one slot per
    CPU of this machine.

    **Graceful drain**: setting the *drain* event (or sending the daemon
    SIGTERM — a handler is installed when running on the main thread and no
    event was supplied) makes the worker stop accepting new work, finish
    every item already in flight, send a ``("goodbye", pid)`` frame so the
    coordinator retires the connection cleanly, and exit
    :data:`WORKER_EXIT_OK`.  That is the supervisor-friendly way to shrink
    a fleet mid-sweep: no requeue storm, no staleness timeout.

    Returns a process exit code — the codes are distinct so supervisors can
    tell apart outcomes that look identical in the logs:

    * :data:`WORKER_EXIT_OK` (0) — only after a ``("shutdown",)`` frame,
      i.e. the coordinator declared the run finished;
    * :data:`WORKER_EXIT_FAILURE` (1) — never managed to connect, or hit a
      fatal protocol error (a frame this checkout cannot unpickle);
    * :data:`WORKER_EXIT_LOST_COORDINATOR` (2) — connected at least once
      but then lost the coordinator for good (reconnect attempts exhausted,
      or *once* was set).  Items may well have been served first — that
      still is not a clean shutdown.
    """
    host, port = parse_address(address)
    if connect_retries < 1:
        raise ValueError(f"connect_retries must be positive, got {connect_retries}")
    if retry_delay < 0:
        raise ValueError(f"retry_delay must be non-negative, got {retry_delay}")
    if heartbeat_interval is not None and heartbeat_interval < 0:
        raise ValueError(
            f"heartbeat_interval must be non-negative, got {heartbeat_interval}"
        )
    if slots < 0:
        raise ValueError(f"slots must be non-negative, got {slots}")
    slots = int(slots) if slots else default_workers()
    if drain is None:
        drain = threading.Event()
        if threading.current_thread() is threading.main_thread():
            try:
                signal.signal(signal.SIGTERM, lambda *_args: drain.set())
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
    connected = False
    while True:
        sock = _connect_with_retry(host, port, connect_retries, retry_delay, log)
        if sock is None:
            log(f"repro worker: giving up on {address} after {connect_retries} attempts")
            return WORKER_EXIT_LOST_COORDINATOR if connected else WORKER_EXIT_FAILURE
        connected = True
        log(f"repro worker: connected to {address} (pid {os.getpid()}, slots {slots})")
        sender = _FrameSender(sock)
        # Fresh per connection: futures cancelled on a connection loss would
        # otherwise leak entered-but-never-exited counts into the next
        # connection's drain accounting.
        in_flight = _InFlight()
        heartbeat_stop: Optional[threading.Event] = None
        executor: Optional[ThreadPoolExecutor] = None
        try:
            info: Dict[str, Any] = {"slots": slots}
            if heartbeat_interval:
                info["heartbeat_interval"] = float(heartbeat_interval)
            sender.send(("hello", os.getpid(), info))
            if heartbeat_interval:
                heartbeat_stop = _start_heartbeat(sender, float(heartbeat_interval))
            if slots > 1:
                executor = ThreadPoolExecutor(
                    max_workers=slots, thread_name_prefix="repro-worker-slot"
                )
            while True:
                if drain.is_set():
                    # Finish what we already accepted, say goodbye, leave.
                    in_flight.wait_idle()
                    try:
                        sender.send(("goodbye", os.getpid()))
                    except OSError:
                        pass
                    log("repro worker: drained in-flight work; exiting")
                    return WORKER_EXIT_OK
                # Wait for readability with a timeout instead of blocking in
                # recv: a drain request must be noticed between frames, and
                # interrupting _recv_exact mid-frame would desync the stream.
                try:
                    readable = select.select([sock], [], [], _DRAIN_POLL)[0]
                except (OSError, ValueError):
                    # ValueError: the socket was closed under us (fd == -1),
                    # e.g. by the reset simulation of a chaos fault.
                    raise ConnectionError("worker socket closed while waiting")
                if not readable:
                    continue
                message = recv_message(sock)
                if message[0] == "shutdown":
                    log("repro worker: coordinator finished; exiting")
                    return WORKER_EXIT_OK
                if message[0] != "task":
                    continue
                plan = chaos.active_plan()
                if plan is not None and plan.take_kill_task():
                    # Simulate the daemon being SIGKILLed mid-task: the
                    # connection dies with the item unanswered, and (like a
                    # supervisor restart) the normal reconnect path below
                    # brings the worker back.
                    raise chaos.ChaosInjected("chaos: worker killed mid-task")
                _kind, round_id, index, fn, task = message
                in_flight.enter()
                if executor is not None:
                    executor.submit(
                        _serve_item, sender, round_id, index, fn, task, in_flight
                    )
                else:
                    _serve_item(sender, round_id, index, fn, task, in_flight)
        except (ConnectionError, OSError):
            log("repro worker: connection lost")
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
            if once:
                return WORKER_EXIT_LOST_COORDINATOR
            # fall through: reconnect for the coordinator's next round
        except Exception:
            # A frame we cannot even unpickle (version-skewed checkout, a
            # task function that does not resolve here, corrupt stream) is
            # deterministic: reconnecting would just die again on the
            # redelivered task.  Log the real cause and exit non-zero so the
            # coordinator's local-worker diagnostics surface it.
            log(f"repro worker: fatal protocol error:\n{traceback.format_exc()}")
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
            return WORKER_EXIT_FAILURE
        finally:
            if heartbeat_stop is not None:
                heartbeat_stop.set()
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)


def _connect_with_retry(
    host: str,
    port: int,
    retries: int,
    delay: float,
    log: Callable[[str], None],
) -> Optional[socket.socket]:
    """Connect with exponential backoff and deterministic jitter.

    *delay* is the base: attempt *i* sleeps ``min(delay * 2**i,
    RECONNECT_BACKOFF_CAP)`` scaled by a 0.5x–1.5x jitter factor drawn from
    a PRNG seeded with the target address and this process id — different
    workers desynchronise (no reconnect stampede after a coordinator
    restart), while any single worker's schedule is reproducible.
    """
    jitter = random.Random(f"{host}:{port}:{os.getpid()}")
    for attempt in range(retries):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if attempt + 1 < retries:
                backoff = min(delay * (2.0 ** attempt), RECONNECT_BACKOFF_CAP)
                time.sleep(backoff * (0.5 + jitter.random()))
    return None
