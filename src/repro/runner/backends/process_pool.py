"""Local process-pool execution (extracted from the PR 1 ``ParallelRunner``).

One :class:`concurrent.futures.ProcessPoolExecutor` is created per submitted
round and torn down with it, matching the original ``ParallelRunner.map``
semantics exactly: no idle worker processes linger between rounds, and a
crashed round cannot poison the next one.  Results stream back in completion
order; the scheduler reorders them.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from repro.runner import telemetry
from repro.runner.backends.base import (
    ExecutionBackend,
    TaskQuarantined,
    validate_task_error_policy,
)


def default_workers() -> int:
    """Worker count used when the caller asks for ``workers=0`` ("auto")."""
    return max(1, os.cpu_count() or 1)


class ProcessPoolBackend(ExecutionBackend):
    """Execute work items across local worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes; ``0`` means "one per CPU".
    mp_context:
        Multiprocessing start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``).  Defaults to ``"fork"`` where available (cheap on
        Linux: workers inherit the imported simulator modules) and the
        platform default elsewhere.
    on_task_error:
        ``"fail"`` (default) re-raises a task exception; ``"quarantine"``
        yields a :class:`TaskQuarantined` sentinel for the failing index so
        the rest of the round still completes.  Pool processes all run the
        same interpreter image, so a deterministic raise is not retried.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 0,
        *,
        mp_context: Optional[str] = None,
        on_task_error: str = "fail",
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.workers = workers if workers > 0 else default_workers()
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self.mp_context = mp_context
        self.on_task_error = validate_task_error_policy(on_task_error)

    def _quarantined(self, index: int, exc: BaseException) -> TaskQuarantined:
        formatted = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return TaskQuarantined(
            index=index, error=formatted, attempts=1, workers=("process-pool",)
        )

    def submit(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        telemetry.inc("backend_tasks_total", len(tasks), backend=self.name)
        if len(tasks) == 1 or self.workers == 1:
            # Not worth a pool round-trip; results are identical either way.
            for index, task in enumerate(tasks):
                if self.on_task_error == "fail":
                    yield index, fn(task)
                    continue
                try:
                    result = fn(task)
                except Exception as exc:
                    result = self._quarantined(index, exc)
                yield index, result
            return
        context = (
            multiprocessing.get_context(self.mp_context) if self.mp_context else None
        )
        max_workers = min(self.workers, len(tasks))
        with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
            index_of = {pool.submit(fn, task): index for index, task in enumerate(tasks)}
            pending = set(index_of)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = index_of[future]
                    if self.on_task_error == "fail":
                        yield index, future.result()
                        continue
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        # A *dead pool process* is executor failure, not task
                        # poison — quarantining here would blame the task
                        # for the substrate.  Let it propagate.
                        raise
                    except Exception as exc:
                        result = self._quarantined(index, exc)
                    yield index, result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessPoolBackend(workers={self.workers}, "
            f"mp_context={self.mp_context!r})"
        )
