"""Wire protocol of the socket-distributed backend.

Framing is deliberately minimal: every message is an 8-byte big-endian
length prefix followed by a pickled tuple.  The first tuple element is the
message type:

========================  =======================================================
coordinator -> worker
------------------------  -------------------------------------------------------
``("task", r, i, fn, t)``  execute work item *t* (round *r*, index *i*) with the
                           module-level callable *fn* (pickled by reference)
``("shutdown",)``          run finished; the worker daemon should exit cleanly
------------------------  -------------------------------------------------------
worker -> coordinator
------------------------  -------------------------------------------------------
``("hello", pid[, info])`` sent once per (re)connection; the optional *info*
                           dict advertises capabilities:
                           ``heartbeat_interval`` opts the worker into the
                           coordinator's staleness enforcement, ``slots`` is
                           how many work items the worker executes
                           concurrently (its credit count; legacy hellos
                           default to 1)
``("heartbeat",)``         periodic liveness beat from a background thread —
                           keeps flowing while a work item is computing, so a
                           busy worker is distinguishable from a hung one
``("result", r, i, v)``    work item *i* of round *r* produced value *v*
``("error", r, i, tb)``    work item *i* of round *r* raised; *tb* is the
                           formatted remote traceback
========================  =======================================================

The payload is **pickle**, because work items are the same picklable value
objects the process-pool backend ships — which also means the coordinator
must only be exposed to trusted workers (unpickling executes code).  Bind to
loopback unless every machine that can reach the port is trusted.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

from repro.runner import chaos

#: Frame header: payload length as an unsigned 64-bit big-endian integer.
_HEADER = struct.Struct(">Q")

#: Refuse frames above this size (a corrupt header would otherwise make the
#: receiver try to allocate petabytes).  1 GiB is far above any real round.
MAX_FRAME_BYTES = 1 << 30


def send_message(sock: socket.socket, message: Tuple[Any, ...]) -> None:
    """Pickle *message* and write it as one length-prefixed frame.

    When a chaos :class:`~repro.runner.chaos.FaultPlan` is active, the frame
    may be deterministically delayed, truncated (torn frame + EOF for the
    peer), or replaced by a dropped connection — see :mod:`repro.runner.chaos`.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(len(payload)) + payload
    plan = chaos.active_plan()
    if plan is not None:
        frame = plan.filter_send(sock, message, frame)
    sock.sendall(frame)


def recv_message(sock: socket.socket) -> Tuple[Any, ...]:
    """Read one length-prefixed frame and unpickle it.

    Raises :class:`ConnectionError` on a cleanly closed peer (EOF) and
    :class:`ValueError` on a frame that exceeds :data:`MAX_FRAME_BYTES`.
    An active chaos plan may drop the connection after a received data
    frame instead of delivering it.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
    message = pickle.loads(_recv_exact(sock, length))
    plan = chaos.active_plan()
    if plan is not None:
        plan.filter_recv(sock, message)
    return message


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly *count* bytes or raise :class:`ConnectionError` on EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` into its parts (the only address syntax we accept).

    IPv6 literals use the standard bracket syntax — ``"[::1]:8000"`` parses
    to ``("::1", 8000)`` — because the colons inside the literal would
    otherwise swallow the port separator.  The brackets are stripped here:
    :func:`socket.create_connection` and ``bind`` want the bare literal.
    """
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"empty IPv6 literal in {address!r}")
    elif ":" in host:
        raise ValueError(
            f"IPv6 literals must be bracketed ([HOST]:PORT), got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"expected HOST:PORT with a numeric port, got {address!r}") from None


def format_address(host: str, port: int) -> str:
    """The inverse of :func:`parse_address` (brackets IPv6 literals)."""
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"
