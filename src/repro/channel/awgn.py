"""Additive white Gaussian noise and SNR bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, as_rng


def snr_db_to_noise_variance(snr_db: float, signal_power: float = 1.0) -> float:
    """Complex-noise variance N0 for a given SNR (dB) and signal power."""
    snr_linear = 10.0 ** (float(snr_db) / 10.0)
    return float(signal_power) / snr_linear


def noise_variance_to_snr_db(noise_variance: float, signal_power: float = 1.0) -> float:
    """Inverse of :func:`snr_db_to_noise_variance`."""
    if noise_variance <= 0:
        raise ValueError(f"noise_variance must be positive, got {noise_variance}")
    return float(10.0 * np.log10(signal_power / noise_variance))


def ebn0_to_esn0_db(ebn0_db: float, bits_per_symbol: int, code_rate: float) -> float:
    """Convert Eb/N0 (dB) to Es/N0 (dB) for a given modulation and code rate."""
    if bits_per_symbol <= 0 or code_rate <= 0:
        raise ValueError("bits_per_symbol and code_rate must be positive")
    return float(ebn0_db + 10.0 * np.log10(bits_per_symbol * code_rate))


def esn0_to_ebn0_db(esn0_db: float, bits_per_symbol: int, code_rate: float) -> float:
    """Convert Es/N0 (dB) to Eb/N0 (dB)."""
    if bits_per_symbol <= 0 or code_rate <= 0:
        raise ValueError("bits_per_symbol and code_rate must be positive")
    return float(esn0_db - 10.0 * np.log10(bits_per_symbol * code_rate))


def awgn_noise(shape, noise_variance: float, rng: RngLike = None) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with total variance *noise_variance*."""
    generator = as_rng(rng)
    sigma = np.sqrt(noise_variance / 2.0)
    return generator.normal(0.0, sigma, shape) + 1j * generator.normal(0.0, sigma, shape)


@dataclass
class AwgnChannel:
    """Memoryless AWGN channel operating at a configurable SNR.

    Parameters
    ----------
    snr_db:
        Ratio of average signal power to total complex noise power, in dB.
        This matches the paper's definition ("the ratio of the user signal
        power over the noise and interference power").
    signal_power:
        Average transmit signal power (1.0 for normalised constellations).
    """

    snr_db: float
    signal_power: float = 1.0

    @property
    def noise_variance(self) -> float:
        """Total complex noise variance N0."""
        return snr_db_to_noise_variance(self.snr_db, self.signal_power)

    def apply(self, signal: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Add AWGN to *signal*."""
        sig = np.asarray(signal, dtype=np.complex128)
        return sig + awgn_noise(sig.shape, self.noise_variance, rng)
