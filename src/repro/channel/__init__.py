"""Wireless channel substrate: AWGN, Rayleigh fading and ITU multipath models."""

from repro.channel.awgn import (
    AwgnChannel,
    awgn_noise,
    ebn0_to_esn0_db,
    esn0_to_ebn0_db,
    snr_db_to_noise_variance,
)
from repro.channel.fading import (
    JakesFadingProcess,
    JakesFadingRealization,
    block_rayleigh_gains,
)
from repro.channel.multipath import (
    ITU_PEDESTRIAN_A,
    ITU_PEDESTRIAN_B,
    ITU_VEHICULAR_A,
    MultipathChannel,
    PowerDelayProfile,
    SINGLE_PATH,
)

__all__ = [
    "AwgnChannel",
    "ITU_PEDESTRIAN_A",
    "ITU_PEDESTRIAN_B",
    "ITU_VEHICULAR_A",
    "JakesFadingProcess",
    "JakesFadingRealization",
    "MultipathChannel",
    "PowerDelayProfile",
    "SINGLE_PATH",
    "awgn_noise",
    "block_rayleigh_gains",
    "ebn0_to_esn0_db",
    "esn0_to_ebn0_db",
    "snr_db_to_noise_variance",
]
