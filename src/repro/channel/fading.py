"""Rayleigh fading processes.

Two models are provided:

* :func:`block_rayleigh_gains` — independent complex Gaussian gains per block
  (quasi-static fading), the usual model for per-TTI link simulations where
  the channel is constant over one transmission but varies across HARQ
  retransmissions ("a wide range of rapidly varying mobile channel
  conditions").
* :class:`JakesFadingProcess` — a sum-of-sinusoids (Jakes/Clarke) model
  producing a time-correlated fading waveform with a configurable Doppler
  frequency, for studies that need intra-packet channel variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_positive_int


def block_rayleigh_gains(
    num_blocks: int,
    num_taps: int = 1,
    tap_powers: np.ndarray | None = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Independent Rayleigh gains per block and tap.

    Parameters
    ----------
    num_blocks:
        Number of independent channel realisations (e.g. HARQ transmissions).
    num_taps:
        Number of multipath taps per realisation.
    tap_powers:
        Average power of each tap (defaults to uniform, normalised to sum 1).
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Complex array of shape ``(num_blocks, num_taps)``.
    """
    num_blocks = ensure_positive_int(num_blocks, "num_blocks")
    num_taps = ensure_positive_int(num_taps, "num_taps")
    if tap_powers is None:
        powers = np.full(num_taps, 1.0 / num_taps)
    else:
        powers = np.asarray(tap_powers, dtype=np.float64)
        if powers.size != num_taps:
            raise ValueError("tap_powers length must equal num_taps")
        if (powers < 0).any():
            raise ValueError("tap_powers must be non-negative")
        powers = powers / powers.sum()
    generator = as_rng(rng)
    gains = generator.normal(0, 1, (num_blocks, num_taps)) + 1j * generator.normal(
        0, 1, (num_blocks, num_taps)
    )
    return gains * np.sqrt(powers / 2.0)


@dataclass(frozen=True)
class JakesFadingRealization:
    """One drawn set of arrival angles and phases, evaluable over any window.

    The realisation is a pure function of its parameters: evaluating sample
    windows ``[0, k)`` and ``[k, n)`` separately concatenates to exactly the
    waveform of ``[0, n)``, so chunked (streaming) generation is
    seed-deterministic across chunk boundaries.

    Attributes
    ----------
    sample_rate_hz:
        Sampling rate of the evaluated waveform.
    doppler_shifts:
        Angular Doppler shift of each sinusoid (rad/s).
    phases_i, phases_q:
        Random phases of the in-phase and quadrature sums.
    """

    sample_rate_hz: float
    doppler_shifts: np.ndarray
    phases_i: np.ndarray
    phases_q: np.ndarray

    def gains(self, start_sample: int, num_samples: int) -> np.ndarray:
        """Complex gains of samples ``[start_sample, start_sample + num_samples)``."""
        num_samples = ensure_positive_int(num_samples, "num_samples")
        if start_sample < 0:
            raise ValueError("start_sample must be non-negative")
        t = (start_sample + np.arange(num_samples)) / self.sample_rate_hz
        n = self.doppler_shifts.size
        in_phase = np.sum(np.cos(np.outer(t, self.doppler_shifts) + self.phases_i), axis=1)
        quadrature = np.sum(np.sin(np.outer(t, self.doppler_shifts) + self.phases_q), axis=1)
        return (in_phase + 1j * quadrature) / np.sqrt(n)


def jakes_gains_batch(
    realizations, start_sample: int, num_samples: int
) -> np.ndarray:
    """Evaluate many :class:`JakesFadingRealization` waveforms in one pass.

    All realisations must share one sample rate (they come from the same
    process).  The evaluation is elementwise plus a contiguous last-axis
    reduction, so each output row is bit-identical to
    ``realizations[i].gains(start_sample, num_samples)``.
    """
    num_samples = ensure_positive_int(num_samples, "num_samples")
    if start_sample < 0:
        raise ValueError("start_sample must be non-negative")
    if not realizations:
        raise ValueError("realizations must not be empty")
    shifts = np.stack([r.doppler_shifts for r in realizations])
    phases_i = np.stack([r.phases_i for r in realizations])
    phases_q = np.stack([r.phases_q for r in realizations])
    t = (start_sample + np.arange(num_samples)) / realizations[0].sample_rate_hz
    argument = t[None, :, None] * shifts[:, None, :]
    in_phase = np.sum(np.cos(argument + phases_i[:, None, :]), axis=2)
    quadrature = np.sum(np.sin(argument + phases_q[:, None, :]), axis=2)
    return (in_phase + 1j * quadrature) / np.sqrt(shifts.shape[1])


@dataclass
class JakesFadingProcess:
    """Sum-of-sinusoids Rayleigh fading waveform generator (Clarke/Jakes model).

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler frequency in Hz.
    sample_rate_hz:
        Sampling rate of the generated waveform.
    num_sinusoids:
        Number of sinusoids in the sum (more gives better Rayleigh statistics).
    """

    doppler_hz: float
    sample_rate_hz: float
    num_sinusoids: int = 32

    def __post_init__(self) -> None:
        if self.doppler_hz < 0:
            raise ValueError("doppler_hz must be non-negative")
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        ensure_positive_int(self.num_sinusoids, "num_sinusoids")

    def realization(self, rng: RngLike = None) -> JakesFadingRealization:
        """Draw one waveform realisation (random arrival angles and phases).

        The draw order (angles, then in-phase phases, then quadrature phases)
        is part of the determinism contract: :meth:`generate` delegates here,
        so seeded waveforms are unchanged across the refactoring that split
        drawing from evaluation.
        """
        generator = as_rng(rng)
        n = self.num_sinusoids
        # Random arrival angles and phases (Monte-Carlo sum-of-sinusoids).
        theta = generator.uniform(0, 2 * np.pi, n)
        phi_i = generator.uniform(0, 2 * np.pi, n)
        phi_q = generator.uniform(0, 2 * np.pi, n)
        return JakesFadingRealization(
            sample_rate_hz=self.sample_rate_hz,
            doppler_shifts=2 * np.pi * self.doppler_hz * np.cos(theta),
            phases_i=phi_i,
            phases_q=phi_q,
        )

    def generate(self, num_samples: int, rng: RngLike = None) -> np.ndarray:
        """Return a unit-power complex fading waveform of *num_samples* samples."""
        num_samples = ensure_positive_int(num_samples, "num_samples")
        return self.realization(rng).gains(0, num_samples)

    def coherence_time(self) -> float:
        """Approximate channel coherence time (0.423 / fD) in seconds."""
        if self.doppler_hz == 0:
            return float("inf")
        return 0.423 / self.doppler_hz
