"""Frequency-selective multipath channels (tapped delay lines).

The paper evaluates "a standard-compliant multipath channel"; 3GPP HSDPA
performance requirements use the ITU Pedestrian-A/B and Vehicular-A power
delay profiles.  This module provides those profiles (resampled to the chip
or symbol rate), random Rayleigh realisations per transmission, and the
convolution of the transmit sequence with the resulting channel impulse
response.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn_noise
from repro.channel.fading import block_rayleigh_gains
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_positive_int


@dataclass(frozen=True)
class PowerDelayProfile:
    """A named power delay profile.

    Parameters
    ----------
    name:
        Profile identifier.
    delays_ns:
        Tap delays in nanoseconds.
    powers_db:
        Average tap powers in dB (relative).
    """

    name: str
    delays_ns: tuple
    powers_db: tuple

    def __post_init__(self) -> None:
        if len(self.delays_ns) != len(self.powers_db):
            raise ValueError("delays_ns and powers_db must have the same length")
        if len(self.delays_ns) == 0:
            raise ValueError("profile must have at least one tap")
        object.__setattr__(self, "delays_ns", tuple(float(d) for d in self.delays_ns))
        object.__setattr__(self, "powers_db", tuple(float(p) for p in self.powers_db))

    @property
    def num_taps(self) -> int:
        """Number of physical taps in the profile."""
        return len(self.delays_ns)

    def linear_powers(self) -> np.ndarray:
        """Tap powers in linear scale, normalised to sum to one."""
        powers = 10.0 ** (np.asarray(self.powers_db) / 10.0)
        return powers / powers.sum()

    def resample(self, sample_period_ns: float) -> tuple[np.ndarray, np.ndarray]:
        """Map physical taps onto a uniformly spaced tap grid.

        Returns ``(tap_indices, tap_powers)`` where taps falling into the same
        sample period have their powers added.
        """
        if sample_period_ns <= 0:
            raise ValueError("sample_period_ns must be positive")
        indices = np.round(np.asarray(self.delays_ns) / sample_period_ns).astype(np.int64)
        powers = self.linear_powers()
        max_index = int(indices.max())
        grid = np.zeros(max_index + 1, dtype=np.float64)
        np.add.at(grid, indices, powers)
        nonzero = np.nonzero(grid)[0]
        return nonzero, grid[nonzero]


#: Flat (single-path) profile — reduces the channel to pure Rayleigh/AWGN.
SINGLE_PATH = PowerDelayProfile("SinglePath", (0.0,), (0.0,))

#: ITU Pedestrian A (ITU-R M.1225), a mild multipath profile.
ITU_PEDESTRIAN_A = PowerDelayProfile(
    "ITU-PedA", (0.0, 110.0, 190.0, 410.0), (0.0, -9.7, -19.2, -22.8)
)

#: ITU Pedestrian B, a strongly frequency-selective profile.
ITU_PEDESTRIAN_B = PowerDelayProfile(
    "ITU-PedB",
    (0.0, 200.0, 800.0, 1200.0, 2300.0, 3700.0),
    (0.0, -0.9, -4.9, -8.0, -7.8, -23.9),
)

#: ITU Vehicular A.
ITU_VEHICULAR_A = PowerDelayProfile(
    "ITU-VehA",
    (0.0, 310.0, 710.0, 1090.0, 1730.0, 2510.0),
    (0.0, -1.0, -9.0, -10.0, -15.0, -20.0),
)

#: Registry of the built-in profiles by name.
PROFILES = {
    profile.name: profile
    for profile in (SINGLE_PATH, ITU_PEDESTRIAN_A, ITU_PEDESTRIAN_B, ITU_VEHICULAR_A)
}


@dataclass
class MultipathChannel:
    """Quasi-static frequency-selective Rayleigh channel with AWGN.

    Each call to :meth:`realize` draws a new set of complex tap gains from
    the configured power delay profile; :meth:`apply` convolves a transmit
    sequence with a realisation and adds noise.  HARQ retransmissions see
    independent realisations, modelling the rapidly varying mobile channel.

    Parameters
    ----------
    profile:
        Power delay profile.
    sample_period_ns:
        Duration of one transmitted sample (chip or symbol) in nanoseconds;
        260 ns corresponds to the 3.84 Mcps UMTS chip rate.
    """

    profile: PowerDelayProfile = ITU_PEDESTRIAN_A
    sample_period_ns: float = 260.417

    def __post_init__(self) -> None:
        self._tap_indices, self._tap_powers = self.profile.resample(self.sample_period_ns)
        # Reusable real workspace for the per-packet noise-power derivation:
        # |signal|^2 is computed in place here instead of materialising two
        # fresh full-batch temporaries (abs, then square) every round.
        self._power_workspace: np.ndarray | None = None

    @property
    def num_effective_taps(self) -> int:
        """Number of taps after resampling to the sample grid."""
        return int(self._tap_indices.size)

    @property
    def impulse_response_length(self) -> int:
        """Length of the discrete channel impulse response."""
        return int(self._tap_indices.max()) + 1

    def realize(self, rng: RngLike = None) -> np.ndarray:
        """Draw one channel impulse response (complex array)."""
        gains = block_rayleigh_gains(
            1, self.num_effective_taps, self._tap_powers, rng
        )[0]
        response = np.zeros(self.impulse_response_length, dtype=np.complex128)
        response[self._tap_indices] = gains
        return response

    def apply(
        self,
        signal: np.ndarray,
        snr_db: float,
        rng: RngLike = None,
        impulse_response: np.ndarray | None = None,
        mean_signal_power: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Pass *signal* through one channel realisation and add AWGN.

        Parameters
        ----------
        signal:
            Transmit samples (unit average power assumed for SNR accounting).
        snr_db:
            Receive SNR in dB (signal power over noise power).
        rng:
            Seed or generator (controls both fading and noise).
        impulse_response:
            Optional pre-drawn impulse response (for reuse across code paths).
        mean_signal_power:
            Average transmit sample power used for the SNR accounting;
            defaults to the empirical mean of *signal*.  Callers that
            modulate the samples with an extra fading waveform pass the
            *unfaded* power here, so a deep fade lowers the instantaneous
            SNR instead of being renormalised away.

        Returns
        -------
        tuple
            ``(received, impulse_response, noise_variance)`` where *received*
            has length ``len(signal) + L - 1``.
        """
        sig = np.asarray(signal, dtype=np.complex128).reshape(1, -1)
        received, responses, noise_variances = self.apply_batch(
            sig,
            [snr_db],
            [as_rng(rng)],
            impulse_responses=None if impulse_response is None else [impulse_response],
            mean_signal_powers=None if mean_signal_power is None else [mean_signal_power],
        )
        return received[0], responses[0], float(noise_variances[0])

    def mean_signal_powers(self, signals: np.ndarray) -> np.ndarray:
        """Row-wise mean ``|x|^2`` of a ``(batch, n)`` sample matrix.

        Uses the channel's preallocated real workspace so the per-round
        noise-power derivation does not materialise two fresh full-batch
        temporaries (the magnitude and its square).  Bit-identical to
        ``np.mean(np.abs(row) ** 2)`` per row.
        """
        sig = np.asarray(signals, dtype=np.complex128)
        workspace = self._power_workspace
        if workspace is None or workspace.shape != sig.shape:
            workspace = np.empty(sig.shape, dtype=np.float64)
            self._power_workspace = workspace
        np.abs(sig, out=workspace)
        np.multiply(workspace, workspace, out=workspace)
        return workspace.mean(axis=1)

    def apply_batch(
        self,
        signals: np.ndarray,
        snr_dbs,
        rngs,
        impulse_responses=None,
        mean_signal_powers=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row-wise :meth:`apply` for a batch of independent packets.

        Every packet draws its fading gains and noise from its *own*
        generator in exactly the serial order (realisation first, then
        noise), so a batch of N is byte-identical to N serial calls.  The
        received matrix is preallocated and filled row by row; the
        convolution stays per-packet (``np.convolve``) because a shifted
        tap-accumulation differs bitwise.

        Parameters
        ----------
        signals:
            ``(batch, num_samples)`` complex transmit matrix.
        snr_dbs:
            Per-packet receive SNRs in dB (scalar broadcasts).
        rngs:
            One seed or generator per packet.
        impulse_responses:
            Optional pre-drawn per-packet impulse responses.
        mean_signal_powers:
            Optional per-packet average transmit powers (see :meth:`apply`).

        Returns
        -------
        tuple
            ``(received, impulse_responses, noise_variances)`` with shapes
            ``(batch, num_samples + L - 1)``, ``(batch, L)`` and ``(batch,)``.
        """
        sig = np.asarray(signals, dtype=np.complex128)
        if sig.ndim != 2:
            raise ValueError(f"expected a 2-D signal matrix, got shape {sig.shape}")
        batch, num_samples = sig.shape
        snr_arr = np.broadcast_to(np.asarray(snr_dbs, dtype=np.float64), (batch,))
        if len(rngs) != batch:
            raise ValueError(f"expected {batch} rngs, got {len(rngs)}")
        if impulse_responses is not None:
            responses = np.stack(
                [np.asarray(h, dtype=np.complex128).reshape(-1) for h in impulse_responses]
            )
        else:
            responses = np.empty((batch, self.impulse_response_length), dtype=np.complex128)
        length = responses.shape[1]
        received = np.empty((batch, num_samples + length - 1), dtype=np.complex128)
        noise_variances = np.empty(batch, dtype=np.float64)
        if mean_signal_powers is None:
            mean_signal_powers = self.mean_signal_powers(sig)
        for i in range(batch):
            generator = as_rng(rngs[i])
            if impulse_responses is None:
                responses[i] = self.realize(generator)
            h = responses[i]
            convolved = np.convolve(sig[i], h)
            signal_power = float(mean_signal_powers[i]) * float(np.sum(np.abs(h) ** 2))
            noise_variance = signal_power / (10.0 ** (float(snr_arr[i]) / 10.0))
            noise_variances[i] = noise_variance
            np.add(
                convolved,
                awgn_noise(convolved.shape, noise_variance, generator),
                out=received[i],
            )
        return received, responses, noise_variances
