"""Frequency-selective multipath channels (tapped delay lines).

The paper evaluates "a standard-compliant multipath channel"; 3GPP HSDPA
performance requirements use the ITU Pedestrian-A/B and Vehicular-A power
delay profiles.  This module provides those profiles (resampled to the chip
or symbol rate), random Rayleigh realisations per transmission, and the
convolution of the transmit sequence with the resulting channel impulse
response.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn_noise
from repro.channel.fading import block_rayleigh_gains
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_positive_int


@dataclass(frozen=True)
class PowerDelayProfile:
    """A named power delay profile.

    Parameters
    ----------
    name:
        Profile identifier.
    delays_ns:
        Tap delays in nanoseconds.
    powers_db:
        Average tap powers in dB (relative).
    """

    name: str
    delays_ns: tuple
    powers_db: tuple

    def __post_init__(self) -> None:
        if len(self.delays_ns) != len(self.powers_db):
            raise ValueError("delays_ns and powers_db must have the same length")
        if len(self.delays_ns) == 0:
            raise ValueError("profile must have at least one tap")
        object.__setattr__(self, "delays_ns", tuple(float(d) for d in self.delays_ns))
        object.__setattr__(self, "powers_db", tuple(float(p) for p in self.powers_db))

    @property
    def num_taps(self) -> int:
        """Number of physical taps in the profile."""
        return len(self.delays_ns)

    def linear_powers(self) -> np.ndarray:
        """Tap powers in linear scale, normalised to sum to one."""
        powers = 10.0 ** (np.asarray(self.powers_db) / 10.0)
        return powers / powers.sum()

    def resample(self, sample_period_ns: float) -> tuple[np.ndarray, np.ndarray]:
        """Map physical taps onto a uniformly spaced tap grid.

        Returns ``(tap_indices, tap_powers)`` where taps falling into the same
        sample period have their powers added.
        """
        if sample_period_ns <= 0:
            raise ValueError("sample_period_ns must be positive")
        indices = np.round(np.asarray(self.delays_ns) / sample_period_ns).astype(np.int64)
        powers = self.linear_powers()
        max_index = int(indices.max())
        grid = np.zeros(max_index + 1, dtype=np.float64)
        np.add.at(grid, indices, powers)
        nonzero = np.nonzero(grid)[0]
        return nonzero, grid[nonzero]


#: Flat (single-path) profile — reduces the channel to pure Rayleigh/AWGN.
SINGLE_PATH = PowerDelayProfile("SinglePath", (0.0,), (0.0,))

#: ITU Pedestrian A (ITU-R M.1225), a mild multipath profile.
ITU_PEDESTRIAN_A = PowerDelayProfile(
    "ITU-PedA", (0.0, 110.0, 190.0, 410.0), (0.0, -9.7, -19.2, -22.8)
)

#: ITU Pedestrian B, a strongly frequency-selective profile.
ITU_PEDESTRIAN_B = PowerDelayProfile(
    "ITU-PedB",
    (0.0, 200.0, 800.0, 1200.0, 2300.0, 3700.0),
    (0.0, -0.9, -4.9, -8.0, -7.8, -23.9),
)

#: ITU Vehicular A.
ITU_VEHICULAR_A = PowerDelayProfile(
    "ITU-VehA",
    (0.0, 310.0, 710.0, 1090.0, 1730.0, 2510.0),
    (0.0, -1.0, -9.0, -10.0, -15.0, -20.0),
)

#: Registry of the built-in profiles by name.
PROFILES = {
    profile.name: profile
    for profile in (SINGLE_PATH, ITU_PEDESTRIAN_A, ITU_PEDESTRIAN_B, ITU_VEHICULAR_A)
}


@dataclass
class MultipathChannel:
    """Quasi-static frequency-selective Rayleigh channel with AWGN.

    Each call to :meth:`realize` draws a new set of complex tap gains from
    the configured power delay profile; :meth:`apply` convolves a transmit
    sequence with a realisation and adds noise.  HARQ retransmissions see
    independent realisations, modelling the rapidly varying mobile channel.

    Parameters
    ----------
    profile:
        Power delay profile.
    sample_period_ns:
        Duration of one transmitted sample (chip or symbol) in nanoseconds;
        260 ns corresponds to the 3.84 Mcps UMTS chip rate.
    """

    profile: PowerDelayProfile = ITU_PEDESTRIAN_A
    sample_period_ns: float = 260.417

    def __post_init__(self) -> None:
        self._tap_indices, self._tap_powers = self.profile.resample(self.sample_period_ns)

    @property
    def num_effective_taps(self) -> int:
        """Number of taps after resampling to the sample grid."""
        return int(self._tap_indices.size)

    @property
    def impulse_response_length(self) -> int:
        """Length of the discrete channel impulse response."""
        return int(self._tap_indices.max()) + 1

    def realize(self, rng: RngLike = None) -> np.ndarray:
        """Draw one channel impulse response (complex array)."""
        gains = block_rayleigh_gains(
            1, self.num_effective_taps, self._tap_powers, rng
        )[0]
        response = np.zeros(self.impulse_response_length, dtype=np.complex128)
        response[self._tap_indices] = gains
        return response

    def apply(
        self,
        signal: np.ndarray,
        snr_db: float,
        rng: RngLike = None,
        impulse_response: np.ndarray | None = None,
        mean_signal_power: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Pass *signal* through one channel realisation and add AWGN.

        Parameters
        ----------
        signal:
            Transmit samples (unit average power assumed for SNR accounting).
        snr_db:
            Receive SNR in dB (signal power over noise power).
        rng:
            Seed or generator (controls both fading and noise).
        impulse_response:
            Optional pre-drawn impulse response (for reuse across code paths).
        mean_signal_power:
            Average transmit sample power used for the SNR accounting;
            defaults to the empirical mean of *signal*.  Callers that
            modulate the samples with an extra fading waveform pass the
            *unfaded* power here, so a deep fade lowers the instantaneous
            SNR instead of being renormalised away.

        Returns
        -------
        tuple
            ``(received, impulse_response, noise_variance)`` where *received*
            has length ``len(signal) + L - 1``.
        """
        generator = as_rng(rng)
        sig = np.asarray(signal, dtype=np.complex128)
        h = impulse_response if impulse_response is not None else self.realize(generator)
        convolved = np.convolve(sig, h)
        if mean_signal_power is None:
            mean_signal_power = float(np.mean(np.abs(sig) ** 2))
        signal_power = float(mean_signal_power) * float(np.sum(np.abs(h) ** 2))
        noise_variance = signal_power / (10.0 ** (snr_db / 10.0))
        received = convolved + awgn_noise(convolved.shape, noise_variance, generator)
        return received, h, noise_variance
